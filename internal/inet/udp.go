package inet

import (
	"encoding/binary"
	"fmt"
)

// UDPHeader is the 8-byte UDP header. The checksum is computed over the
// pseudo-header, header and payload as RFC 768 prescribes.
type UDPHeader struct {
	SrcPort, DstPort Port
	Length           uint16 // header + payload
	Checksum         uint16
}

// MarshalUDP serialises a UDP header plus payload, computing the checksum
// with the pseudo-header for src/dst.
func MarshalUDP(src, dst Endpoint, payload []byte) ([]byte, error) {
	return appendUDP(nil, src, dst, payload)
}

// appendUDP is MarshalUDP into buf's spare capacity — the pooled send
// path's allocation-free form.
func appendUDP(buf []byte, src, dst Endpoint, payload []byte) ([]byte, error) {
	total := UDPHeaderLen + len(payload)
	if total > 0xFFFF {
		return buf, ErrPayloadRange
	}
	base := len(buf)
	buf = append(buf, make([]byte, total)...)
	b := buf[base:]
	binary.BigEndian.PutUint16(b[0:], uint16(src.Port))
	binary.BigEndian.PutUint16(b[2:], uint16(dst.Port))
	binary.BigEndian.PutUint16(b[4:], uint16(total))
	copy(b[UDPHeaderLen:], payload)
	cs := udpChecksum(src.Addr, dst.Addr, b)
	if cs == 0 {
		cs = 0xFFFF // RFC 768: transmitted all-ones when computed zero
	}
	binary.BigEndian.PutUint16(b[6:], cs)
	return buf, nil
}

// ParseUDP decodes a UDP header from b (the IP payload) and returns it with
// the application payload. src/dst are needed to verify the pseudo-header
// checksum.
func ParseUDP(srcAddr, dstAddr Addr, b []byte) (UDPHeader, []byte, error) {
	var h UDPHeader
	if len(b) < UDPHeaderLen {
		return h, nil, ErrShortHeader
	}
	h.SrcPort = Port(binary.BigEndian.Uint16(b[0:]))
	h.DstPort = Port(binary.BigEndian.Uint16(b[2:]))
	h.Length = binary.BigEndian.Uint16(b[4:])
	h.Checksum = binary.BigEndian.Uint16(b[6:])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(b) {
		return h, nil, ErrBadLength
	}
	if h.Checksum != 0 { // zero means "no checksum" in UDP over IPv4
		if udpChecksum(srcAddr, dstAddr, b[:h.Length]) != 0 {
			return h, nil, ErrBadChecksum
		}
	}
	return h, b[UDPHeaderLen:h.Length], nil
}

// udpChecksum computes the UDP checksum including the IPv4 pseudo-header.
// Verifying a buffer containing its checksum yields 0. The pseudo-header is
// summed in place rather than materialised, keeping the per-datagram path
// allocation-free.
func udpChecksum(src, dst Addr, udp []byte) uint16 {
	sum := uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(ProtoUDP)
	sum += uint32(uint16(len(udp)))
	return checksumWithInitial(sum, udp)
}

// String summarises the header.
func (h UDPHeader) String() string {
	return fmt.Sprintf("UDP %d -> %d len=%d", h.SrcPort, h.DstPort, h.Length)
}
