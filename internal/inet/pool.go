package inet

// WireBuf is a reference-counted wire-payload buffer. The UDP send path
// builds each datagram's bytes into one; Fragment makes every fragment of
// the datagram share it (their payloads are disjoint sub-slices), with the
// reference count tracking how many fragments are still alive. When the
// last fragment dies — dropped at a hop, unroutable, or consumed by the
// receiving host's reassembly — the buffer returns to its pool and the
// next send reuses it, which is what keeps steady-state streaming from
// allocating per packet.
//
// Capture never holds a WireBuf reference: the sniffer copies payload
// bytes into its own arena (or streams them through analyzers) inside the
// tap call, before the network mutates or recycles anything.
type WireBuf struct {
	b    []byte
	refs int32
	pool *BufPool
}

// BufPool recycles WireBufs and the Datagram structs that carry them. A
// pool belongs to one single-threaded simulation (the Network owns it); it
// is not safe for concurrent use. The zero value is ready.
type BufPool struct {
	free  []*WireBuf
	freeD []*Datagram
}

// getDatagram returns a zeroed Datagram struct, recycled when possible.
func (p *BufPool) getDatagram() *Datagram {
	if n := len(p.freeD); n > 0 {
		d := p.freeD[n-1]
		p.freeD = p.freeD[:n-1]
		return d
	}
	return &Datagram{}
}

// putDatagram recycles a dead Datagram struct. The caller owns the last
// reference; the struct is zeroed so a stale pointer reads an empty
// datagram rather than the next packet's.
func (p *BufPool) putDatagram(d *Datagram) {
	*d = Datagram{}
	p.freeD = append(p.freeD, d)
}

// get returns a buffer with capacity for at least n bytes and one
// reference. Capacities are rounded up to a power of two (min 1 KB), so a
// mixed-size workload converges on a few size classes instead of churning
// the free list with near-miss buffers.
func (p *BufPool) get(n int) *WireBuf {
	var wb *WireBuf
	if last := len(p.free) - 1; last >= 0 {
		wb = p.free[last]
		p.free = p.free[:last]
		if cap(wb.b) < n {
			wb.b = make([]byte, 0, roundCap(n))
		}
	} else {
		wb = &WireBuf{pool: p, b: make([]byte, 0, roundCap(n))}
	}
	wb.b = wb.b[:0]
	wb.refs = 1
	return wb
}

// roundCap rounds a requested capacity up to the next power of two, at
// least 1 KB (UDP payloads are capped at 64 KB, so overshoot is bounded).
func roundCap(n int) int {
	c := 1 << 10
	for c < n {
		c <<= 1
	}
	return c
}

// put returns a buffer to the free list.
func (p *BufPool) put(wb *WireBuf) {
	p.free = append(p.free, wb)
}

// Release drops the datagram's reference on its shared wire buffer, if it
// has one; the buffer returns to its pool when the last sibling fragment
// releases, and the datagram's own struct recycles immediately — Release
// is each fragment's terminal touch, so the caller must not use the
// datagram afterwards (the same contract the recycled payload bytes
// already imposed). Datagrams built outside a pool (ICMP, TCP, tests)
// have no owner and Release is a no-op. Releasing the same datagram twice
// is a bug; the owner pointer is cleared to make the second call harmless.
func (d *Datagram) Release() {
	wb := d.owner
	if wb == nil {
		return
	}
	d.owner = nil
	wb.refs--
	if pool := wb.pool; pool != nil {
		if wb.refs <= 0 {
			pool.put(wb)
		}
		pool.putDatagram(d)
	}
}

// Recycle returns a fragmented parent datagram's struct to its pool
// without touching the shared wire buffer's reference count. Only the
// host send path calls it, after SetFragmentRefs has pointed the buffer's
// count at the fragments: the parent struct is then dead — its payload
// lives on as the fragments' sub-slices — but was never given a reference
// of its own to Release.
func (d *Datagram) Recycle() {
	wb := d.owner
	if wb == nil {
		return
	}
	d.owner = nil
	if wb.pool != nil {
		wb.pool.putDatagram(d)
	}
}

// BuildUDPPooled is BuildUDP with the marshalled bytes placed in a pooled
// wire buffer: the caller (the host send path) must arrange for every
// fragment of the returned datagram to be released exactly once.
func BuildUDPPooled(p *BufPool, src, dst Endpoint, id uint16, payload []byte) (*Datagram, error) {
	total := UDPHeaderLen + len(payload)
	if IPv4HeaderLen+total > 0xFFFF {
		return nil, ErrPayloadRange
	}
	wb := p.get(total)
	var err error
	wb.b, err = appendUDP(wb.b, src, dst, payload)
	if err != nil {
		wb.refs = 0
		p.put(wb)
		return nil, err
	}
	d := p.getDatagram()
	d.Header = IPv4Header{
		ID:       id,
		TTL:      DefaultTTL,
		Protocol: ProtoUDP,
		Src:      src.Addr,
		Dst:      dst.Addr,
	}
	d.Payload = wb.b
	d.owner = wb
	d.Header.TotalLen = uint16(d.Len())
	return d, nil
}
