package dispatch

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"turbulence/internal/dispatch/chaos"
	"turbulence/internal/wire"
)

// chaosCfg is the fault mix for the recovery tests: every fault the
// harness knows, all at once, with a seed so a failure replays.
func chaosCfg(seed int64) chaos.Config {
	return chaos.Config{
		Seed:             seed,
		DropRequest:      0.15,
		TruncateRequest:  0.10,
		DuplicateRequest: 0.10,
		ServerError:      0.10,
		TruncateResponse: 0.10,
		ResetResponse:    0.10,
		Latency:          3 * time.Millisecond,
	}
}

// chaosWorkerOpts is the client/worker tuning that survives the fault
// mix: fast retries with a deep attempt budget, and a heartbeat that
// keeps leases alive across injected latency.
func chaosWorkerOpts(name string, tr *chaos.Transport) []Option {
	return []Option{
		WithName(name),
		WithTransport(tr),
		WithRunWorkers(1),
		WithRetry(5 * time.Millisecond),
		WithMaxAttempts(50),
		WithRetryBudget(30 * time.Second),
		WithHeartbeat(40 * time.Millisecond),
	}
}

// TestChaosCrashRecoveryMatchesUnsharded is this PR's headline pin: a full
// sweep where everything goes wrong at once — every RPC travels through a
// seeded fault injector (drops, truncations in both directions, duplicate
// deliveries, lost acks, mid-body resets, latency), one worker takes a
// lease and is killed without ever completing, and the coordinator itself
// is killed mid-sweep and a fresh one resumed from its checkpoint journal
// — and the merged output is still byte-identical to a single-process
// Runner.Run. Recovery is not best-effort: it is exact.
func TestChaosCrashRecoveryMatchesUnsharded(t *testing.T) {
	plan := testPlan(t)
	want := unshardedGob(t, plan)
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")

	// Quarantine is disabled on both coordinators: chaos strikes shards at
	// random (every truncated delivery is a strike), and a parked shard
	// would — by design — be withheld from the merge, breaking the
	// byte-identical pin this test exists to make.
	coordOpts := func() []Option {
		return []Option{
			WithShards(6),
			WithCheckpoint(ckpt),
			WithLeaseTTL(800 * time.Millisecond),
			WithRetry(5 * time.Millisecond),
			WithMaxShardFailures(-1),
		}
	}

	// --- Phase 1: the doomed coordinator. ---
	c1, err := New(plan, coordOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	// A worker leases a shard and dies without completing, renewing, or
	// saying goodbye.
	doomed, err := c1.Lease("doomed")
	if err != nil || doomed.LeaseID == "" {
		t.Fatalf("doomed worker got no lease: %+v, %v", doomed, err)
	}
	// One live worker pulls through chaos until at least two shards land.
	tr1 := chaos.New(LoopbackTransport(c1), chaosCfg(11))
	ctx1, crash := context.WithCancel(context.Background())
	var wg1 sync.WaitGroup
	wg1.Add(1)
	var err1 error
	go func() {
		defer wg1.Done()
		w := NewWorker(Loopback(c1, chaosWorkerOpts("w1", tr1)...), chaosWorkerOpts("w1", tr1)...)
		_, err1 = w.Run(ctx1)
	}()
	deadline := time.Now().Add(time.Minute)
	for {
		if _, _, done := c1.Counts(); done >= 2 {
			crash() // SIGKILL, as far as c1's journal is concerned
			break
		}
		if time.Now().After(deadline) {
			crash()
			t.Fatal("phase 1 never completed two shards under chaos")
		}
		time.Sleep(time.Millisecond)
	}
	wg1.Wait()
	if err1 != nil {
		t.Fatalf("phase-1 worker: %v", err1)
	}
	_, _, done1 := c1.Counts()
	// The doomed worker's lease is still outstanding (TTL 800ms, phase 1 is
	// faster), so its shard cannot have completed: the crash is mid-sweep.
	if done1 < 2 || done1 >= 6 {
		t.Fatalf("crash happened with %d/6 shards done, want mid-sweep", done1)
	}
	// c1 is now abandoned — never Drained, never Closed — exactly as a
	// SIGKILL would leave it. Its journal file holds the fsync'd frames.

	// --- Phase 2: resume from the checkpoint. ---
	// No WithShards here: the carve comes from the journal header.
	c2, err := Resume(ckpt,
		WithLeaseTTL(800*time.Millisecond),
		WithRetry(5*time.Millisecond),
		WithMaxShardFailures(-1),
	)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer c2.Close()
	if c2.Epoch() == c1.Epoch() {
		t.Fatal("resumed coordinator reused the dead epoch")
	}
	if _, _, done2 := c2.Counts(); done2 != done1 {
		t.Fatalf("resume replayed %d shards, journal held %d", done2, done1)
	}
	// The doomed worker finally delivers — to the wrong (new) coordinator.
	// Its pre-crash lease ID is from a dead epoch and must be rejected;
	// the shard will be re-run under a fresh lease instead.
	if err := c2.Complete(doomed.LeaseID, batchFor(plan, doomed.Shard, doomed.Shards)); err == nil {
		t.Fatal("resumed coordinator accepted a dead epoch's lease")
	}

	tr2 := chaos.New(LoopbackTransport(c2), chaosCfg(13))
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel2()
	var wg2 sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			name := fmt.Sprintf("r%d", i)
			w := NewWorker(Loopback(c2, chaosWorkerOpts(name, tr2)...), chaosWorkerOpts(name, tr2)...)
			_, errs[i] = w.Run(ctx2)
		}()
	}
	merged, err := c2.Wait(ctx2)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	wg2.Wait()
	for i, e := range errs {
		if e != nil {
			t.Fatalf("phase-2 worker %d: %v", i, e)
		}
	}

	var buf bytes.Buffer
	if err := wire.WriteGob(&buf, merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chaos + crash + resume changed the output (%d vs %d bytes)", buf.Len(), len(want))
	}
	// The harness must actually have bitten, or this test proved nothing.
	if tr1.Faults()+tr2.Faults() == 0 {
		t.Fatal("chaos transport injected no faults")
	}
	// The journal now holds every shard exactly once across both lifetimes.
	h, recs, _, err := readJournal(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards != 6 {
		t.Fatalf("journal header records %d shards, want 6", h.Shards)
	}
	seen := map[int]int{}
	for _, rec := range recs {
		seen[rec.Shard]++
	}
	if len(seen) != 6 {
		t.Fatalf("journal covers %d distinct shards, want 6 (%v)", len(seen), seen)
	}
	for shard, n := range seen {
		if n != 1 {
			t.Fatalf("shard %d journalled %d times, want once", shard, n)
		}
	}
}
