package dispatch

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/netem"
	"turbulence/internal/resultstore"
	"turbulence/internal/wire"
)

func openStore(t *testing.T, dir string) *resultstore.Store {
	t.Helper()
	st, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// runDispatched drives a full coordinator + n loopback workers sweep and
// returns the merged wire bytes.
func runDispatched(t *testing.T, c *Coordinator, n int) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := NewWorker(Loopback(c),
				WithName(fmt.Sprintf("w%d", i)),
				WithRunWorkers(1),
				WithRetry(10*time.Millisecond),
			)
			_, errs[i] = w.Run(ctx)
		}()
	}
	merged, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	var buf bytes.Buffer
	if err := wire.WriteGob(&buf, merged); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDispatchWarmRerunServesFromStore is the dispatcher half of the
// incremental-sweep pin: a cold dispatched sweep populates the result
// store; a second coordinator on the identical plan finds every shard
// fully cached at carve time, grants zero leases, and its merge is
// byte-identical to the cold run — which is itself byte-identical to the
// unsharded single-process sweep.
func TestDispatchWarmRerunServesFromStore(t *testing.T) {
	plan := testPlan(t)
	want := unshardedGob(t, plan)
	st := openStore(t, t.TempDir())

	cold, err := New(plan, WithShards(4), WithRetry(10*time.Millisecond), WithResultStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if got := runDispatched(t, cold, 2); !bytes.Equal(got, want) {
		t.Fatal("cold dispatched sweep differs from unsharded run")
	}
	if s := st.Stats(); s.Entries != plan.Size() {
		t.Fatalf("store holds %d entries after the cold sweep, want %d", s.Entries, plan.Size())
	}

	warm, err := New(plan, WithShards(4), WithResultStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Done() {
		t.Fatal("warm coordinator not done at carve time despite a fully-cached plan")
	}
	if g, _ := warm.Lease("w"); !g.Done {
		t.Fatalf("warm coordinator leased work: %+v", g)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	merged, err := warm.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wire.WriteGob(&buf, merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("warm store-served sweep differs from unsharded run")
	}
}

// TestDispatchPartialCacheShipsCachedCells pins the superset-rerun path: a
// smaller sweep populates the store, then a superset plan's grants carry
// the overlapping cells as CachedCells, workers omit them, and the merge
// is still byte-identical to the unsharded superset run.
func TestDispatchPartialCacheShipsCachedCells(t *testing.T) {
	dsl, err := netem.Find("dsl")
	if err != nil {
		t.Fatal(err)
	}
	st := openStore(t, t.TempDir())

	// Seed the store from an in-process run of a strict subset (one pair
	// under both scenarios — 2 of the 6 superset cells).
	subset := core.NewPlan(7).
		ForPairs(core.PairKey{Set: 1, Class: media.Low}).
		UnderScenarios(nil, dsl)
	if _, err := core.NewRunner(
		core.WithWorkers(1),
		core.WithTraceRetention(core.StreamProfiles),
		core.WithResultStore(st),
	).Run(subset); err != nil {
		t.Fatal(err)
	}
	seeded := st.Stats().Entries
	if seeded != subset.Size() {
		t.Fatalf("store holds %d entries after the subset run, want %d", seeded, subset.Size())
	}

	plan := testPlan(t)
	want := unshardedGob(t, plan)
	c, err := New(plan, WithShards(1), WithRetry(10*time.Millisecond), WithResultStore(st))
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Lease("probe")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.CachedCells) != seeded {
		t.Fatalf("grant ships %d cached cells, want %d: %+v", len(g.CachedCells), seeded, g.CachedCells)
	}
	// The worker executes the grant exactly as Worker.runShard would:
	// reconstruct, omit the cached cells, run, ship.
	gp, err := g.Plan.Plan()
	if err != nil {
		t.Fatal(err)
	}
	shard := gp.Shard(g.Shard, g.Shards).Omitting(g.CachedCells...)
	if shard.Size() != plan.Size()-seeded {
		t.Fatalf("omitted shard has %d cells, want %d", shard.Size(), plan.Size()-seeded)
	}
	results, err := core.NewRunner(
		core.WithWorkers(1),
		core.WithTraceRetention(core.StreamProfiles),
	).Run(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(g.LeaseID, wire.FromResults(results)); err != nil {
		t.Fatal(err)
	}
	if !c.Done() {
		t.Fatal("coordinator not done after the only shard completed")
	}
	var buf bytes.Buffer
	if err := wire.WriteGob(&buf, c.Collected()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("partially-cached sweep differs from unsharded run")
	}
	// The fresh cells were inserted on completion: the store now covers
	// the whole superset.
	if s := st.Stats(); s.Entries != plan.Size() {
		t.Fatalf("store holds %d entries after the superset sweep, want %d", s.Entries, plan.Size())
	}
}

// TestAdaptiveLeaseSplitting pins the subdivision mechanics without
// workers: a measured-slow puller gets a stride-split slice (Shards is a
// multiple of the base carve), the far half stays leasable, every cell is
// granted exactly once across the slices, and completing all slices
// assembles the whole shard.
func TestAdaptiveLeaseSplitting(t *testing.T) {
	plan := testPlan(t) // 6 cells
	c, err := New(plan,
		WithShards(1),
		WithAdaptiveLeases(true),
		WithLeaseTarget(time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	// 2 cells/s × 1s target = 2 cells per lease: the 6-cell shard must
	// split (6 → 3 → 2, stride-halving) for this worker.
	c.m.workerThroughput.With("slow").Set(2)

	fakeRuns := func(g wire.LeaseGrant) []wire.Run {
		var runs []wire.Run
		for _, k := range plan.Shard(g.Shard, g.Shards).Keys() {
			runs = append(runs, wire.Run{Index: k.Index, Set: k.Pair.Set, Class: k.Pair.Class.String(),
				Comparison: &core.Comparison{Set: k.Pair.Set}})
		}
		return runs
	}

	seen := make(map[int]int)
	grants := 0
	for !c.Done() {
		g, err := c.Lease("slow")
		if err != nil {
			t.Fatal(err)
		}
		if g.LeaseID == "" {
			t.Fatalf("queue stalled mid-shard: %+v", g)
		}
		if g.Shards%c.shards != 0 {
			t.Fatalf("granted Shards=%d is not a multiple of the base carve %d", g.Shards, c.shards)
		}
		runs := fakeRuns(g)
		if len(runs) > 2 {
			t.Fatalf("slow worker granted %d cells, want <= 2 (grant %d/%d)", len(runs), g.Shard, g.Shards)
		}
		for _, r := range runs {
			seen[r.Index]++
		}
		grants++
		if grants > 16 {
			t.Fatal("adaptive splitting did not converge")
		}
		if err := c.Complete(g.LeaseID, runs); err != nil {
			t.Fatal(err)
		}
	}
	if grants < 3 {
		t.Fatalf("6 cells at <=2 per lease took %d grants, want >= 3", grants)
	}
	for idx := 0; idx < plan.Size(); idx++ {
		if seen[idx] != 1 {
			t.Fatalf("cell %d granted %d times, want exactly once", idx, seen[idx])
		}
	}
	merged := c.Collected()
	if len(merged) != plan.Size() {
		t.Fatalf("assembled %d runs, want %d", len(merged), plan.Size())
	}
	for i, r := range merged {
		if r.Index != i {
			t.Fatalf("merged[%d].Index = %d — canonical order broken by subdivision", i, r.Index)
		}
	}
}

// TestAdaptiveDispatchMatchesUnsharded is the adaptive end-to-end pin:
// real workers with live throughput measurements, splitting enabled, and
// the merge still byte-identical to the single-process run.
func TestAdaptiveDispatchMatchesUnsharded(t *testing.T) {
	plan := testPlan(t)
	want := unshardedGob(t, plan)
	c, err := New(plan,
		WithShards(2),
		WithAdaptiveLeases(true),
		WithLeaseTarget(50*time.Millisecond),
		WithRetry(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := runDispatched(t, c, 3); !bytes.Equal(got, want) {
		t.Fatal("adaptive dispatched sweep differs from unsharded run")
	}
}

// TestAdaptiveSplitAfterStrike pins the quarantine-pressure rule: once a
// shard has a strike, even an unmeasured worker gets at most half of it,
// so a repeat failure forfeits half as much work.
func TestAdaptiveSplitAfterStrike(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(1), WithAdaptiveLeases(true))
	if err != nil {
		t.Fatal(err)
	}
	// First pull: no measurement, no strikes — the whole shard.
	g1, _ := c.Lease("fresh")
	if g1.Shards != 1 {
		t.Fatalf("unmeasured worker got a split slice %d/%d, want the whole shard", g1.Shard, g1.Shards)
	}
	// Reject it (a strike) and pull again: the slab must now subdivide.
	if err := c.Complete(g1.LeaseID, nil); err == nil {
		t.Fatal("short batch accepted")
	}
	g2, _ := c.Lease("fresh")
	if g2.LeaseID == "" {
		t.Fatalf("struck shard not re-leasable: %+v", g2)
	}
	if g2.Shards < 2 {
		t.Fatalf("struck shard granted whole (%d/%d), want a split slice", g2.Shard, g2.Shards)
	}
}
