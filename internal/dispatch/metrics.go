package dispatch

import (
	"time"

	"turbulence/internal/obs"
	"turbulence/internal/wire"
)

// coordMetrics is the coordinator's instrumentation: lifecycle counters
// for every lease transition, scrape-time gauges over the queue state,
// per-worker series fed from shipped WorkerStats snapshots, and the
// shard-lifecycle event ring behind GET /events.
//
// Counter updates happen under c.mu at the exact point the state machine
// transitions, and the registry's snapshot lock IS c.mu — so any scrape
// observes one consistent state in which the lease ledger balances
// exactly:
//
//	granted == active + completed + expired + rejected + lost + delivering
//
// (active = len(c.leases); the four resolution counters partition every
// lease ever removed from it, and delivering covers the window where a
// completion has claimed its lease but is still waiting on validation or
// the journal — CompleteStats drops c.mu there, so a scrape can land
// inside it). The GaugeFunc closures below read
// coordinator fields WITHOUT locking for the same reason: they only run
// during a render, which holds c.mu via the snapshot lock.
type coordMetrics struct {
	reg  *obs.Registry
	ring *obs.Ring

	granted   *obs.Counter
	renewed   *obs.Counter
	completed *obs.Counter
	expired   *obs.Counter
	rejected  *obs.Counter
	lost      *obs.Counter

	strikes            *obs.Counter
	quarantines        *obs.Counter
	unparks            *obs.Counter
	batchCells         *obs.Histogram
	adaptiveLeaseCells *obs.Histogram

	journalFsyncs       *obs.Counter
	journalFsyncSeconds *obs.Histogram

	workerCells          *obs.CounterVec
	workerShards         *obs.CounterVec
	workerRenewals       *obs.CounterVec
	workerRetries        *obs.CounterVec
	workerRunSeconds     *obs.FloatGaugeVec
	workerThroughput     *obs.FloatGaugeVec
	workerTestbedsBuilt  *obs.CounterVec
	workerTestbedsReused *obs.CounterVec
	workerWheelPeak      *obs.FloatGaugeVec
}

// newCoordMetrics registers the dispatcher metric set. The gauges close
// over c and read its fields directly — see the locking note on
// coordMetrics.
func newCoordMetrics(c *Coordinator, ringSize int) *coordMetrics {
	reg := obs.NewRegistry()
	reg.SetSnapshotLock(func() func() {
		c.mu.Lock()
		return c.mu.Unlock
	})
	m := &coordMetrics{
		reg:  reg,
		ring: obs.NewRing(ringSize),

		granted:   reg.Counter("turbulence_dispatch_leases_granted_total", "Shard leases handed to workers."),
		renewed:   reg.Counter("turbulence_dispatch_leases_renewed_total", "Successful lease renewals (heartbeats)."),
		completed: reg.Counter("turbulence_dispatch_leases_completed_total", "Leases resolved by an accepted or duplicate-absorbed completion."),
		expired:   reg.Counter("turbulence_dispatch_leases_expired_total", "Leases that lapsed without renewal and were requeued."),
		rejected:  reg.Counter("turbulence_dispatch_leases_rejected_total", "Leases resolved by an undecodable or protocol-violating delivery."),
		lost:      reg.Counter("turbulence_dispatch_leases_lost_total", "Leases released when renewal found the shard already resolved."),

		strikes:            reg.Counter("turbulence_dispatch_strikes_total", "Failures charged against shards (expiries plus rejected deliveries)."),
		quarantines:        reg.Counter("turbulence_dispatch_quarantines_total", "Shards parked after reaching the strike threshold."),
		unparks:            reg.Counter("turbulence_dispatch_unparks_total", "Quarantined shards rescued by a late completion."),
		batchCells:         reg.Histogram("turbulence_dispatch_batch_cells", "Cells per accepted completion batch.", obs.BatchBuckets),
		adaptiveLeaseCells: reg.Histogram("turbulence_dispatch_adaptive_lease_cells", "Effective (non-cached) cells per adaptively sized lease.", obs.BatchBuckets),

		journalFsyncs:       reg.Counter("turbulence_dispatch_journal_fsyncs_total", "Checkpoint journal appends made durable."),
		journalFsyncSeconds: reg.Histogram("turbulence_dispatch_journal_fsync_seconds", "Seconds per checkpoint journal fsync.", []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}),

		workerCells:          reg.CounterVec("turbulence_dispatch_worker_cells_total", "Cells completed per worker, as self-measured in WorkerStats.", "worker"),
		workerShards:         reg.CounterVec("turbulence_dispatch_worker_shards_total", "Shards completed per worker.", "worker"),
		workerRenewals:       reg.CounterVec("turbulence_dispatch_worker_renewals_total", "Lease renewals per worker while running shards.", "worker"),
		workerRetries:        reg.CounterVec("turbulence_dispatch_worker_retries_total", "Transport retries per worker while running shards.", "worker"),
		workerRunSeconds:     reg.FloatGaugeVec("turbulence_dispatch_worker_run_seconds", "Wall-clock the worker spent executing its most recent shard.", "worker"),
		workerThroughput:     reg.FloatGaugeVec("turbulence_dispatch_worker_throughput_cells_per_second", "Cells per second over the worker's most recent shard, self-measured.", "worker"),
		workerTestbedsBuilt:  reg.CounterVec("turbulence_dispatch_worker_testbeds_built_total", "Testbeds constructed from scratch per worker, as self-measured in WorkerStats.", "worker"),
		workerTestbedsReused: reg.CounterVec("turbulence_dispatch_worker_testbeds_reused_total", "Cells served by resetting a cached testbed per worker, as self-measured in WorkerStats.", "worker"),
		workerWheelPeak:      reg.FloatGaugeVec("turbulence_dispatch_worker_wheel_depth_peak", "High-water timing-wheel bucket occupancy over the worker's most recent shard (zero under the heap backend).", "worker"),
	}
	reg.GaugeFunc("turbulence_dispatch_queue_depth", "Shards sitting in the pending queue.",
		func() float64 { return float64(len(c.pending)) })
	reg.GaugeFunc("turbulence_dispatch_active_leases", "Leases currently outstanding.",
		func() float64 { return float64(len(c.leases)) })
	reg.GaugeFunc("turbulence_dispatch_deliveries_inflight", "Completions holding a claimed lease but not yet classified (validating or journalling).",
		func() float64 { return float64(c.delivering) })
	reg.GaugeFunc("turbulence_dispatch_shards_total", "Shards the plan was carved into.",
		func() float64 { return float64(c.shards) })
	reg.GaugeFunc("turbulence_dispatch_shards_done", "Shards whose results are collected.",
		func() float64 {
			n := 0
			for _, d := range c.done {
				if d {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("turbulence_dispatch_shards_quarantined", "Shards currently parked in quarantine.",
		func() float64 {
			n := 0
			for _, q := range c.quarantined {
				if q {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("turbulence_dispatch_shards_remaining", "Non-empty shards neither collected nor quarantined.",
		func() float64 { return float64(c.remaining) })
	return m
}

// event appends one shard-lifecycle transition to the ring. Called with
// c.mu held (ring has its own lock; the ordering guarantee — events land
// in transition order — comes from the caller's lock).
func (m *coordMetrics) event(kind string, shard int, lease, worker, detail string) {
	m.ring.Append(obs.Event{
		At:     time.Now(),
		Kind:   kind,
		Shard:  shard,
		Lease:  lease,
		Worker: worker,
		Detail: detail,
	})
}

// recordWorkerStats folds one shipped WorkerStats snapshot into the
// per-worker series. Unknown snapshot versions were already filtered by
// the caller. Called with c.mu held.
func (m *coordMetrics) recordWorkerStats(s *wire.WorkerStats) {
	name := s.Worker
	if name == "" {
		name = "unknown"
	}
	m.workerCells.With(name).Add(uint64(s.Cells))
	m.workerShards.With(name).Inc()
	m.workerRenewals.With(name).Add(uint64(s.Renewals))
	m.workerRetries.With(name).Add(s.Retries)
	m.workerTestbedsBuilt.With(name).Add(uint64(s.TestbedsBuilt))
	m.workerTestbedsReused.With(name).Add(uint64(s.TestbedsReused))
	m.workerWheelPeak.With(name).Set(float64(s.WheelPeak))
	secs := float64(s.RunMillis) / 1000
	m.workerRunSeconds.With(name).Set(secs)
	if secs <= 0 {
		secs = 0.001 // sub-millisecond shard; avoid a division blowup
	}
	m.workerThroughput.With(name).Set(float64(s.Cells) / secs)
}

// Metrics exposes the coordinator's registry, for embedders that want to
// mount it somewhere other than the built-in /metrics route.
func (c *Coordinator) Metrics() *obs.Registry { return c.m.reg }

// Events exposes the shard-lifecycle event ring behind GET /events.
func (c *Coordinator) Events() *obs.Ring { return c.m.ring }
