package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"turbulence/internal/core"
	"turbulence/internal/wire"
)

// StatsQueue is the optional Queue extension for shipping a worker's
// self-measured shard stats alongside a completion. Both the Coordinator
// (in process) and the Client (as an HTTP header) implement it; a worker
// driving a queue that doesn't simply falls back to plain Complete and
// the measurements are not shipped.
type StatsQueue interface {
	Queue
	CompleteStats(leaseID string, runs []wire.Run, stats *wire.WorkerStats) error
}

// RetryCounter is the optional Queue extension exposing cumulative
// transport retries (the Client implements it); workers difference it
// around a shard for WorkerStats.Retries.
type RetryCounter interface {
	Retries() uint64
}

// Worker is the dumb half of the dispatcher: pull a lease, run the shard,
// ship the results, repeat until the coordinator says Done. It holds no
// state between shards — everything it needs to execute arrives in the
// lease grant — which is what makes workers interchangeable and safe to
// kill.
type Worker struct {
	q   Queue
	cfg Config
}

// NewWorker builds a worker pulling from q. Relevant options: WithName,
// WithRunWorkers, WithRetry, WithHeartbeat, WithRunContext, WithLogf.
func NewWorker(q Queue, opts ...Option) *Worker {
	return &Worker{q: q, cfg: newConfig(opts)}
}

// Run pulls and executes shards until the coordinator reports Done,
// returning how many shards this worker completed. Cancelling ctx drains
// gracefully: the current shard still finishes and ships (bounded work —
// one shard), no further leases are taken, and Run returns nil. Hard
// cancellation is the RunContext option: when it fires, the in-flight
// simulation aborts between events, the lease is abandoned to expiry, and
// Run returns the context's error.
//
// While a shard simulates, a heartbeat goroutine renews its lease every
// Heartbeat (default TTL/3), so the coordinator's LeaseTTL can stay tight
// — fast detection of dead workers — without double-running shards that
// legitimately outlive it. A rejected renewal means the lease is gone
// (the coordinator restarted, or presumed us dead and re-issued the
// shard): the worker aborts the orphaned simulation mid-event and pulls a
// fresh lease instead of shipping a late duplicate.
//
// Failure is an input, not an exit: an unreachable coordinator (retry
// budget exhausted) drains the worker — log, stop pulling, return nil —
// and a rejected completion is logged and skipped, because the
// coordinator requeues or quarantines the shard on its side. Only a
// version-mismatched coordinator and the hard-cancel context are fatal.
//
// Shards execute with core.Runner under StreamProfiles retention, so a
// worker's memory is O(RunWorkers × analyzer state) — no trace is ever
// materialised, however large the leased plan.
func (w *Worker) Run(ctx context.Context) (completed int, err error) {
	for {
		// A fired RunContext is the abort signal wherever it is observed —
		// mid-shard or between leases must exit the same way.
		if err := w.cfg.RunContext.Err(); err != nil {
			return completed, err
		}
		if ctx.Err() != nil {
			w.cfg.Logf("dispatch: %s draining after %d shards", w.cfg.Name, completed)
			return completed, nil
		}
		grant, err := w.q.Lease(w.cfg.Name)
		if err != nil {
			if errors.Is(err, ErrUnreachable) {
				w.cfg.Logf("dispatch: %s: coordinator unreachable, draining after %d shards: %v", w.cfg.Name, completed, err)
				return completed, nil
			}
			return completed, fmt.Errorf("dispatch: %s: lease: %w", w.cfg.Name, err)
		}
		switch {
		case grant.Version != wire.Version:
			return completed, fmt.Errorf("dispatch: %s: coordinator speaks wire version %d, this worker %d", w.cfg.Name, grant.Version, wire.Version)
		case grant.Done:
			w.cfg.Logf("dispatch: %s done after %d shards", w.cfg.Name, completed)
			return completed, nil
		case grant.Wait:
			if !sleep(ctx, time.Duration(grant.RetryMillis)*time.Millisecond, w.cfg.Retry) {
				return completed, nil
			}
			continue
		}
		// Self-measurement brackets the shard: wall time and renewals come
		// out of runShard, transport retries are differenced around it.
		var retriesBefore uint64
		rc, hasRetries := w.q.(RetryCounter)
		if hasRetries {
			retriesBefore = rc.Retries()
		}
		runs, orphaned, stats, err := w.runShard(grant)
		if err != nil {
			return completed, err
		}
		if orphaned {
			// The lease was lost mid-run (coordinator restart, or it
			// presumed us dead): the shard belongs to someone else now.
			// Nothing to ship; pull fresh work.
			w.cfg.Logf("dispatch: %s: lease %s lost mid-shard, aborted without shipping", w.cfg.Name, grant.LeaseID)
			continue
		}
		if runs == nil {
			// Hard-cancelled mid-simulation: abandon the lease (it will
			// expire and requeue) and report why we stopped.
			return completed, w.cfg.RunContext.Err()
		}
		if hasRetries {
			stats.Retries = rc.Retries() - retriesBefore
		}
		if err := w.complete(grant.LeaseID, runs, &stats); err != nil {
			if errors.Is(err, ErrUnreachable) {
				w.cfg.Logf("dispatch: %s: coordinator unreachable shipping %s, draining after %d shards: %v", w.cfg.Name, grant.LeaseID, completed, err)
				return completed, nil
			}
			// A conclusive rejection (unknown lease after a coordinator
			// restart, a quarantined shard): the work is lost but the
			// queue is intact — the coordinator re-issues or parks the
			// shard. Log and keep pulling rather than dying mid-fleet.
			w.cfg.Logf("dispatch: %s: complete %s rejected, continuing: %v", w.cfg.Name, grant.LeaseID, err)
			continue
		}
		completed++
	}
}

// complete ships a batch, with stats when the queue can carry them.
func (w *Worker) complete(leaseID string, runs []wire.Run, stats *wire.WorkerStats) error {
	if sq, ok := w.q.(StatsQueue); ok {
		return sq.CompleteStats(leaseID, runs, stats)
	}
	return w.q.Complete(leaseID, runs)
}

// runShard reconstructs the granted plan, executes the leased slice under
// a renewal heartbeat, and flattens the results to their wire shape.
// orphaned means the lease was lost mid-run and the shard aborted; a nil,
// false return means the run was hard-cancelled mid-simulation. The
// returned stats carry the worker's self-measurement for the shard —
// wall time, cell count, renewals — except Retries, which the caller
// differences around this call.
func (w *Worker) runShard(grant wire.LeaseGrant) (runs []wire.Run, orphaned bool, stats wire.WorkerStats, err error) {
	stats = wire.WorkerStats{Version: wire.StatsVersion, Worker: w.cfg.Name, Shard: grant.Shard}
	plan, err := grant.Plan.Plan()
	if err != nil {
		return nil, false, stats, fmt.Errorf("dispatch: %s: lease %s: %w", w.cfg.Name, grant.LeaseID, err)
	}
	shard := plan.Shard(grant.Shard, grant.Shards)
	if len(grant.CachedCells) > 0 {
		// The coordinator already holds these cells from its result store;
		// simulating them here would be correct but wasted work.
		shard = shard.Omitting(grant.CachedCells...)
	}
	w.cfg.Logf("dispatch: %s running shard %d/%d (%d cells) as %s", w.cfg.Name, grant.Shard, grant.Shards, shard.Size(), grant.LeaseID)

	// The run context is a child of the hard-cancel context: either the
	// operator's abort or a lost lease stops the simulation between
	// events; the two are told apart afterwards by RunContext.Err.
	runCtx, cancelRun := context.WithCancel(w.cfg.RunContext)
	defer cancelRun()
	var lost atomic.Bool
	var renewals atomic.Int64
	stopHeartbeat := w.heartbeat(grant, &lost, cancelRun, &renewals)

	runnerOpts := []core.RunnerOption{
		core.WithWorkers(w.cfg.RunWorkers),
		core.WithContext(runCtx),
		core.WithTraceRetention(core.StreamProfiles),
		core.WithSweepStats(func(sw core.SweepStats) {
			stats.TestbedsBuilt = sw.TestbedsBuilt
			stats.TestbedsReused = sw.TestbedsReused
			stats.WheelPeak = sw.WheelPeak
		}),
	}
	if w.cfg.Store != nil {
		// Local read-through cache: cells this worker (or a co-located
		// sweep) has already simulated are served from disk even when the
		// coordinator is remote and has no store of its own.
		runnerOpts = append(runnerOpts, core.WithResultStore(w.cfg.Store))
	}
	runner := core.NewRunner(runnerOpts...)
	// A cell error is a result, not a transport failure: the batch ships
	// with the Err run inside (fail-fast leaves it short, which the
	// coordinator accepts exactly because the error explains the gap), so
	// the collector can surface *which* cell failed instead of leasing the
	// poisoned shard forever. Hence Run's error is ignored here — it is
	// already in the results.
	start := time.Now()
	results, _ := runner.Run(shard)
	stats.RunMillis = time.Since(start).Milliseconds()
	stopHeartbeat()
	stats.Renewals = int(renewals.Load())
	if w.cfg.RunContext.Err() != nil {
		return nil, false, stats, nil
	}
	if lost.Load() {
		return nil, true, stats, nil
	}
	runs = wire.FromResults(results)
	stats.Cells = len(runs)
	return runs, false, stats, nil
}

// heartbeat keeps grant's lease alive while the shard simulates: renew at
// every interval tick, and on a conclusive ErrLeaseLost set lost and
// cancel the run — the shard is orphaned and finishing it would only ship
// a late duplicate. Transport trouble is not a verdict: the renew call
// already retried under its budget, and the lease may still be honoured,
// so the loop keeps beating until the lease is conclusively gone or the
// shard ends. Returns a stop function (idempotent enough for one caller)
// that waits for the goroutine to exit.
func (w *Worker) heartbeat(grant wire.LeaseGrant, lost *atomic.Bool, cancelRun context.CancelFunc, renewals *atomic.Int64) (stop func()) {
	ttl := time.Duration(grant.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		return func() {}
	}
	interval := w.cfg.Heartbeat
	if interval <= 0 {
		interval = ttl / 3
	}
	if interval < 2*time.Millisecond {
		interval = 2 * time.Millisecond
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			err := w.q.Renew(grant.LeaseID, w.cfg.Name)
			switch {
			case err == nil:
				renewals.Add(1)
			case errors.Is(err, ErrLeaseLost):
				w.cfg.Logf("dispatch: %s: renew %s: %v — aborting shard", w.cfg.Name, grant.LeaseID, err)
				lost.Store(true)
				cancelRun()
				return
			default:
				// Unreachable or garbled: keep the simulation going and
				// keep trying — if the lease really lapsed, the next
				// conclusive answer (or the completion itself) settles it.
				w.cfg.Logf("dispatch: %s: renew %s: %v", w.cfg.Name, grant.LeaseID, err)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// sleep waits for the coordinator's retry hint (or fallback when the hint
// is absent) plus up to 25% jitter — idle workers polling one coordinator
// should not do so in lockstep — returning false if ctx cancelled first.
func sleep(ctx context.Context, hint, fallback time.Duration) bool {
	if hint <= 0 {
		hint = fallback
	}
	hint += rand.N(hint/4 + 1)
	t := time.NewTimer(hint)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
