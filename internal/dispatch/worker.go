package dispatch

import (
	"context"
	"fmt"
	"time"

	"turbulence/internal/core"
	"turbulence/internal/wire"
)

// Worker is the dumb half of the dispatcher: pull a lease, run the shard,
// ship the results, repeat until the coordinator says Done. It holds no
// state between shards — everything it needs to execute arrives in the
// lease grant — which is what makes workers interchangeable and safe to
// kill.
type Worker struct {
	q   Queue
	cfg Config
}

// NewWorker builds a worker pulling from q. Relevant options: WithName,
// WithRunWorkers, WithRetry, WithRunContext, WithLogf.
func NewWorker(q Queue, opts ...Option) *Worker {
	return &Worker{q: q, cfg: newConfig(opts)}
}

// Run pulls and executes shards until the coordinator reports Done,
// returning how many shards this worker completed. Cancelling ctx drains
// gracefully: the current shard still finishes and ships (bounded work —
// one shard), no further leases are taken, and Run returns nil. Hard
// cancellation is the RunContext option: when it fires, the in-flight
// simulation aborts between events, the lease is abandoned to expiry, and
// Run returns the context's error.
//
// Shards execute with core.Runner under StreamProfiles retention, so a
// worker's memory is O(RunWorkers × analyzer state) — no trace is ever
// materialised, however large the leased plan.
func (w *Worker) Run(ctx context.Context) (completed int, err error) {
	for {
		// A fired RunContext is the abort signal wherever it is observed —
		// mid-shard or between leases must exit the same way.
		if err := w.cfg.RunContext.Err(); err != nil {
			return completed, err
		}
		if ctx.Err() != nil {
			w.cfg.Logf("dispatch: %s draining after %d shards", w.cfg.Name, completed)
			return completed, nil
		}
		grant, err := w.q.Lease(w.cfg.Name)
		if err != nil {
			return completed, fmt.Errorf("dispatch: %s: lease: %w", w.cfg.Name, err)
		}
		switch {
		case grant.Version != wire.Version:
			return completed, fmt.Errorf("dispatch: %s: coordinator speaks wire version %d, this worker %d", w.cfg.Name, grant.Version, wire.Version)
		case grant.Done:
			w.cfg.Logf("dispatch: %s done after %d shards", w.cfg.Name, completed)
			return completed, nil
		case grant.Wait:
			if !sleep(ctx, time.Duration(grant.RetryMillis)*time.Millisecond, w.cfg.Retry) {
				return completed, nil
			}
			continue
		}
		runs, err := w.runShard(grant)
		if err != nil {
			return completed, err
		}
		if runs == nil {
			// Hard-cancelled mid-simulation: abandon the lease (it will
			// expire and requeue) and report why we stopped.
			return completed, w.cfg.RunContext.Err()
		}
		if err := w.q.Complete(grant.LeaseID, runs); err != nil {
			return completed, fmt.Errorf("dispatch: %s: complete %s: %w", w.cfg.Name, grant.LeaseID, err)
		}
		completed++
	}
}

// runShard reconstructs the granted plan, executes the leased slice and
// flattens the results to their wire shape. A nil, nil return means the
// run was hard-cancelled mid-simulation.
func (w *Worker) runShard(grant wire.LeaseGrant) ([]wire.Run, error) {
	plan, err := grant.Plan.Plan()
	if err != nil {
		return nil, fmt.Errorf("dispatch: %s: lease %s: %w", w.cfg.Name, grant.LeaseID, err)
	}
	shard := plan.Shard(grant.Shard, grant.Shards)
	w.cfg.Logf("dispatch: %s running shard %d/%d (%d cells) as %s", w.cfg.Name, grant.Shard, grant.Shards, shard.Size(), grant.LeaseID)
	runner := core.NewRunner(
		core.WithWorkers(w.cfg.RunWorkers),
		core.WithContext(w.cfg.RunContext),
		core.WithTraceRetention(core.StreamProfiles),
	)
	// A cell error is a result, not a transport failure: the batch ships
	// with the Err run inside (fail-fast leaves it short, which the
	// coordinator accepts exactly because the error explains the gap), so
	// the collector can surface *which* cell failed instead of leasing the
	// poisoned shard forever. Hence Run's error is ignored here — it is
	// already in the results.
	results, _ := runner.Run(shard)
	if w.cfg.RunContext.Err() != nil {
		return nil, nil
	}
	return wire.FromResults(results), nil
}

// sleep waits for the coordinator's retry hint (or fallback when the hint
// is absent), returning false if ctx cancelled first.
func sleep(ctx context.Context, hint, fallback time.Duration) bool {
	if hint <= 0 {
		hint = fallback
	}
	t := time.NewTimer(hint)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
