// Package chaos is the dispatcher's fault-injection harness: an
// http.RoundTripper that wraps any transport and corrupts traffic the
// ways real networks and dying machines do — dropped requests, injected
// latency, 5xx answers, truncated request and response bodies, mid-body
// connection resets, duplicated deliveries — driven by a seeded PRNG so a
// failing run replays. The dispatcher's recovery machinery (client
// retry/backoff with budget, idempotent completion, lease renewal and
// expiry, checkpoint/resume) is only trustworthy because the end-to-end
// tests run entire sweeps through this transport and still pin the merged
// output byte-identical to an unsharded run.
//
// Fault decisions are drawn from one mutex-guarded rand.Rand in request
// order, so a single-goroutine test sequence is exactly reproducible per
// seed; with concurrent workers the interleaving (and so the fault
// assignment) varies, but the dispatcher's guarantee under test is
// precisely that output never depends on which requests were unlucky.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"syscall"
	"time"
)

// Config sets per-fault probabilities (0..1). The zero value injects
// nothing; Transport then is the identity.
type Config struct {
	// Seed keys the fault stream. Same seed + same request order = same
	// faults.
	Seed int64

	// DropRequest vanishes the request: the server never sees it and the
	// caller gets a transport error (a lost packet, a refused connect).
	DropRequest float64
	// TruncateRequest delivers only the first half of the request body,
	// so the server decodes a torn gob mid-stream.
	TruncateRequest float64
	// DuplicateRequest delivers the request twice (a retried send whose
	// first copy was not actually lost); the caller sees the second
	// response. Exercises server-side idempotency.
	DuplicateRequest float64
	// ServerError lets the server handle the request, then discards its
	// answer and reports 503 — the ack-was-lost case.
	ServerError float64
	// TruncateResponse cuts the response body in half with a clean EOF.
	TruncateResponse float64
	// ResetResponse errors the response body with ECONNRESET partway
	// through.
	ResetResponse float64

	// Latency is the maximum injected delay per request (uniform in
	// [0, Latency)); 0 disables. Keep it well under the client's request
	// timeout or injected latency masquerades as unreachability.
	Latency time.Duration
}

// Transport injects cfg's faults around next. Safe for concurrent use.
type Transport struct {
	next http.RoundTripper
	cfg  Config

	mu  sync.Mutex
	rng *rand.Rand

	// Counters tally injected faults, so tests can assert the harness
	// actually bit (a chaos test whose probabilities never fired proves
	// nothing). Read them only after traffic stops.
	Dropped    int
	Truncated  int
	Duplicated int
	Errored    int
	Reset      int
}

// New wraps next in a fault-injecting transport. A nil next uses
// http.DefaultTransport.
func New(next http.RoundTripper, cfg Config) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{next: next, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// decisions is one request's drawn fate. All draws happen in one locked
// block in fixed order, keeping the stream stable regardless of which
// faults are enabled.
type decisions struct {
	delay                                           time.Duration
	drop, truncReq, dup, errAfter, truncResp, reset bool
}

func (t *Transport) draw() decisions {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d decisions
	if t.cfg.Latency > 0 {
		d.delay = time.Duration(t.rng.Int63n(int64(t.cfg.Latency)))
	}
	d.drop = t.rng.Float64() < t.cfg.DropRequest
	d.truncReq = t.rng.Float64() < t.cfg.TruncateRequest
	d.dup = t.rng.Float64() < t.cfg.DuplicateRequest
	d.errAfter = t.rng.Float64() < t.cfg.ServerError
	d.truncResp = t.rng.Float64() < t.cfg.TruncateResponse
	d.reset = t.rng.Float64() < t.cfg.ResetResponse
	switch {
	case d.drop:
		t.Dropped++
	case d.truncReq:
		t.Truncated++
	case d.dup:
		t.Duplicated++
	}
	// Response-side tallies only count when the request side let the
	// request through; adjusted in RoundTrip.
	return d
}

// RoundTrip applies the drawn faults. Request-side faults are exclusive
// (a dropped request cannot also be truncated); response-side faults
// apply to whatever response came back.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.draw()
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.drop {
		drainClose(req.Body)
		return nil, fmt.Errorf("chaos: request dropped: %w", syscall.ECONNREFUSED)
	}

	body, err := readAllClose(req.Body)
	if err != nil {
		return nil, err
	}
	send := body
	if d.truncReq {
		send = body[:len(body)/2]
	}
	resp, err := t.roundTrip(req, send)
	if err != nil {
		return nil, err
	}
	if d.dup && !d.truncReq {
		// Deliver again; the caller sees the second answer.
		drainClose(resp.Body)
		resp, err = t.roundTrip(req, body)
		if err != nil {
			return nil, err
		}
	}

	if d.errAfter {
		t.count(&t.Errored)
		drainClose(resp.Body)
		return synthetic(req, http.StatusServiceUnavailable, "chaos: injected server error"), nil
	}
	respBody, err := readAllClose(resp.Body)
	if err != nil {
		return nil, err
	}
	switch {
	case d.reset:
		t.count(&t.Reset)
		resp.Body = io.NopCloser(io.MultiReader(
			bytes.NewReader(respBody[:len(respBody)/2]),
			errReader{fmt.Errorf("chaos: %w", syscall.ECONNRESET)},
		))
	case d.truncResp:
		t.count(&t.Truncated)
		resp.Body = io.NopCloser(bytes.NewReader(respBody[:len(respBody)/2]))
	default:
		resp.Body = io.NopCloser(bytes.NewReader(respBody))
	}
	resp.ContentLength = -1
	return resp, nil
}

// roundTrip re-sends req with the given body bytes through the wrapped
// transport.
func (t *Transport) roundTrip(req *http.Request, body []byte) (*http.Response, error) {
	r := req.Clone(req.Context())
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	return t.next.RoundTrip(r)
}

func (t *Transport) count(field *int) {
	t.mu.Lock()
	*field++
	t.mu.Unlock()
}

// Faults reports how many faults were injected in total.
func (t *Transport) Faults() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Dropped + t.Truncated + t.Duplicated + t.Errored + t.Reset
}

func synthetic(req *http.Request, code int, msg string) *http.Response {
	return &http.Response{
		Status:     http.StatusText(code),
		StatusCode: code,
		Proto:      req.Proto,
		ProtoMajor: req.ProtoMajor,
		ProtoMinor: req.ProtoMinor,
		Header:     make(http.Header),
		Body:       io.NopCloser(bytes.NewReader([]byte(msg))),
		Request:    req,
	}
}

type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

func readAllClose(rc io.ReadCloser) ([]byte, error) {
	if rc == nil {
		return nil, nil
	}
	defer rc.Close()
	return io.ReadAll(rc)
}

func drainClose(rc io.ReadCloser) {
	if rc != nil {
		io.Copy(io.Discard, rc)
		rc.Close()
	}
}
