package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"syscall"
	"testing"
)

// stub is the innocent server behind the chaos transport: it records what
// actually arrived and answers 200 with a fixed body.
type stub struct {
	mu     sync.Mutex
	calls  int
	bodies [][]byte
	resp   []byte
}

func (s *stub) RoundTrip(req *http.Request) (*http.Response, error) {
	b, err := io.ReadAll(req.Body)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.calls++
	s.bodies = append(s.bodies, b)
	s.mu.Unlock()
	return &http.Response{
		Status:     http.StatusText(http.StatusOK),
		StatusCode: http.StatusOK,
		Proto:      req.Proto,
		ProtoMajor: req.ProtoMajor,
		ProtoMinor: req.ProtoMinor,
		Header:     make(http.Header),
		Body:       io.NopCloser(bytes.NewReader(s.resp)),
		Request:    req,
	}, nil
}

func post(t *testing.T, tr *Transport, payload []byte) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://victim/x", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return tr.RoundTrip(req)
}

var payload = []byte("0123456789abcdef")

func TestDropRequestNeverReachesServer(t *testing.T) {
	s := &stub{resp: []byte("ok")}
	tr := New(s, Config{Seed: 1, DropRequest: 1})
	resp, err := post(t, tr, payload)
	if err == nil {
		resp.Body.Close()
		t.Fatal("dropped request returned a response")
	}
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("drop error: %v, want ECONNREFUSED", err)
	}
	if s.calls != 0 {
		t.Fatalf("server saw %d calls for a dropped request", s.calls)
	}
	if tr.Dropped != 1 || tr.Faults() != 1 {
		t.Fatalf("fault tally: dropped=%d total=%d", tr.Dropped, tr.Faults())
	}
}

func TestTruncateRequestHalvesBody(t *testing.T) {
	s := &stub{resp: []byte("ok")}
	tr := New(s, Config{Seed: 1, TruncateRequest: 1})
	resp, err := post(t, tr, payload)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if s.calls != 1 || !bytes.Equal(s.bodies[0], payload[:len(payload)/2]) {
		t.Fatalf("server saw %d calls, body %q; want half of %q", s.calls, s.bodies, payload)
	}
}

func TestDuplicateRequestDeliversTwice(t *testing.T) {
	s := &stub{resp: []byte("ok")}
	tr := New(s, Config{Seed: 1, DuplicateRequest: 1})
	resp, err := post(t, tr, payload)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if s.calls != 2 {
		t.Fatalf("server saw %d calls, want 2", s.calls)
	}
	for i, b := range s.bodies {
		if !bytes.Equal(b, payload) {
			t.Fatalf("delivery %d saw body %q, want the intact payload", i, b)
		}
	}
	if !bytes.Equal(body, []byte("ok")) {
		t.Fatalf("caller saw %q, want the second response", body)
	}
}

func TestServerErrorAfterHandling(t *testing.T) {
	s := &stub{resp: []byte("ok")}
	tr := New(s, Config{Seed: 1, ServerError: 1})
	resp, err := post(t, tr, payload)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if s.calls != 1 {
		t.Fatalf("server saw %d calls, want 1 — the 503 must hide a handled request", s.calls)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

func TestTruncateResponseHalvesBody(t *testing.T) {
	s := &stub{resp: []byte("a full response body")}
	tr := New(s, Config{Seed: 1, TruncateResponse: 1})
	resp, err := post(t, tr, payload)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("truncated response must end cleanly, got %v", err)
	}
	if len(body) != len(s.resp)/2 {
		t.Fatalf("caller read %d bytes, want %d", len(body), len(s.resp)/2)
	}
}

func TestResetResponseErrorsMidBody(t *testing.T) {
	s := &stub{resp: []byte("a full response body")}
	tr := New(s, Config{Seed: 1, ResetResponse: 1})
	resp, err := post(t, tr, payload)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("read error %v, want ECONNRESET", err)
	}
	if len(body) != len(s.resp)/2 {
		t.Fatalf("read %d bytes before the reset, want %d", len(body), len(s.resp)/2)
	}
}

// TestSeededDeterminism pins the replay contract: the same seed over the
// same request sequence draws the same faults, observation for
// observation.
func TestSeededDeterminism(t *testing.T) {
	cfg := Config{
		Seed:             99,
		DropRequest:      0.3,
		TruncateRequest:  0.2,
		DuplicateRequest: 0.2,
		ServerError:      0.2,
		TruncateResponse: 0.2,
		ResetResponse:    0.2,
	}
	trace := func() []string {
		s := &stub{resp: []byte("a full response body")}
		tr := New(s, cfg)
		var out []string
		for i := 0; i < 64; i++ {
			resp, err := post(t, tr, payload)
			if err != nil {
				out = append(out, fmt.Sprintf("err:%v", err))
				continue
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			out = append(out, fmt.Sprintf("status:%d body:%d readerr:%v", resp.StatusCode, len(body), rerr))
		}
		out = append(out, fmt.Sprintf("faults:%d calls:%d", tr.Faults(), s.calls))
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("observation %d diverged across replays:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	if a[len(a)-1] == "faults:0 calls:64" {
		t.Fatal("no faults drawn at these probabilities — the harness is inert")
	}
}
