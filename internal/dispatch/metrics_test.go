package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"turbulence/internal/wire"
)

// promLine is the shape every sample line of a /metrics scrape must take:
// a metric name, an optional one-label set, and a float value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (-?(?:[0-9.eE+-]+|\+Inf|NaN))$`)

// scrapeBody parses one Prometheus text scrape strictly: every
// non-comment line must match the exposition grammar. Unlabeled samples
// land in flat; labeled ones in labeled[name][labelPart].
func scrapeBody(t *testing.T, body string) (flat map[string]float64, labeled map[string]map[string]float64) {
	t.Helper()
	flat = make(map[string]float64)
	labeled = make(map[string]map[string]float64)
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty /metrics body")
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if m[2] == "" {
			flat[m[1]] = v
			continue
		}
		if labeled[m[1]] == nil {
			labeled[m[1]] = make(map[string]float64)
		}
		labeled[m[1]][m[2]] = v
	}
	return flat, labeled
}

// scrapeURL fetches and parses base+/metrics, checking the content type.
func scrapeURL(t *testing.T, hc *http.Client, base string) (map[string]float64, map[string]map[string]float64) {
	t.Helper()
	resp, err := hc.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return scrapeBody(t, string(body))
}

// checkLeaseBalance asserts the scrape-time ledger invariant: every lease
// ever granted is either still active, mid-delivery, or resolved by
// exactly one of the four outcome counters. Because the registry's
// snapshot lock is the coordinator's own mutex, this must hold on every
// scrape, however racy the sweep around it.
func checkLeaseBalance(t *testing.T, flat map[string]float64) {
	t.Helper()
	granted := flat["turbulence_dispatch_leases_granted_total"]
	resolved := flat["turbulence_dispatch_active_leases"] +
		flat["turbulence_dispatch_deliveries_inflight"] +
		flat["turbulence_dispatch_leases_completed_total"] +
		flat["turbulence_dispatch_leases_expired_total"] +
		flat["turbulence_dispatch_leases_rejected_total"] +
		flat["turbulence_dispatch_leases_lost_total"]
	if granted != resolved {
		t.Fatalf("lease ledger out of balance: granted %v != active+delivering+completed+expired+rejected+lost %v", granted, resolved)
	}
}

// TestMetricsEndToEnd runs a real dispatched sweep over a localhost HTTP
// server while scraping /metrics the whole time: every mid-sweep scrape
// must parse and balance its lease ledger, and the final scrape must show
// the worker-reported throughput — cells per worker summing to the plan,
// nonzero throughput gauges — plus the lifecycle events behind /events.
func TestMetricsEndToEnd(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan,
		WithShards(4),
		WithLeaseTTL(time.Minute),
		WithRetry(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	hc := srv.Client()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := Work(ctx, srv.URL,
				WithName(fmt.Sprintf("meter%d", i)),
				WithRunWorkers(1),
				WithRetry(10*time.Millisecond),
			); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	waitDone := make(chan struct{})
	var merged []wire.Run
	var waitErr error
	go func() {
		defer close(waitDone)
		merged, waitErr = c.Wait(ctx)
	}()

	// The mid-sweep scrape loop: a monitor polling the coordinator while
	// workers lease, run and ship. Each scrape is one consistent snapshot.
	scrapes := 0
	for scraping := true; scraping; {
		select {
		case <-waitDone:
			scraping = false
		case <-time.After(25 * time.Millisecond):
		}
		flat, _ := scrapeURL(t, hc, srv.URL)
		checkLeaseBalance(t, flat)
		scrapes++
	}
	wg.Wait()
	if waitErr != nil {
		t.Fatal(waitErr)
	}
	if len(merged) != plan.Size() {
		t.Fatalf("merged %d runs, want %d", len(merged), plan.Size())
	}
	t.Logf("scraped %d times mid-sweep", scrapes)

	flat, labeled := scrapeURL(t, hc, srv.URL)
	checkLeaseBalance(t, flat)
	if got := flat["turbulence_dispatch_leases_granted_total"]; got != 4 {
		t.Fatalf("granted %v leases, want 4", got)
	}
	if got := flat["turbulence_dispatch_leases_completed_total"]; got != 4 {
		t.Fatalf("completed %v leases, want 4", got)
	}
	if got := flat["turbulence_dispatch_shards_done"]; got != 4 {
		t.Fatalf("shards_done %v, want 4", got)
	}
	if got := flat["turbulence_dispatch_batch_cells_count"]; got != 4 {
		t.Fatalf("batch histogram count %v, want 4", got)
	}
	if got := flat["turbulence_dispatch_batch_cells_sum"]; got != float64(plan.Size()) {
		t.Fatalf("batch histogram sum %v, want %d", got, plan.Size())
	}
	// Worker self-measurement made it across the wire: the per-worker
	// cell counters sum to the plan, and every reporting worker carries a
	// nonzero throughput gauge.
	cells := 0.0
	for _, v := range labeled["turbulence_dispatch_worker_cells_total"] {
		cells += v
	}
	if cells != float64(plan.Size()) {
		t.Fatalf("worker-reported cells sum to %v, want %d (series: %v)", cells, plan.Size(), labeled["turbulence_dispatch_worker_cells_total"])
	}
	tp := labeled["turbulence_dispatch_worker_throughput_cells_per_second"]
	if len(tp) == 0 {
		t.Fatal("no per-worker throughput gauges")
	}
	for labels, v := range tp {
		if v <= 0 {
			t.Fatalf("throughput gauge {%s} = %v, want > 0", labels, v)
		}
	}

	// The lifecycle trace saw the same sweep: a lease and a complete per
	// shard, in a ring that counted everything it retained.
	resp, err := hc.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events EventsReport
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if events.Total != len(events.Events) {
		t.Fatalf("events total %d != retained %d with an unwrapped ring", events.Total, len(events.Events))
	}
	kinds := make(map[string]int)
	for _, ev := range events.Events {
		kinds[ev.Kind]++
		if ev.Kind == "lease" && (ev.Lease == "" || ev.Worker == "") {
			t.Fatalf("lease event missing lease id or worker: %+v", ev)
		}
	}
	if kinds["lease"] != 4 || kinds["complete"] != 4 {
		t.Fatalf("event kinds %v, want 4 lease + 4 complete", kinds)
	}
}

// TestStatusReportShape pins the GET /status JSON contract: operators
// script against these exact keys, so a rename is a breaking change.
func TestStatusReportShape(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	// One strike on the books, so the failures detail renders too.
	g, _ := c.Lease("shaky")
	if err := c.Complete(g.LeaseID, nil); err == nil {
		t.Fatal("short batch accepted")
	}
	hc := &http.Client{Transport: loopbackTransport{h: c.Handler()}}
	resp, err := hc.Get("http://loopback/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"pending", "leased", "done", "shards", "epoch", "failures"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("/status missing key %q in %s", key, body)
		}
	}
	var failures []map[string]json.RawMessage
	if err := json.Unmarshal(raw["failures"], &failures); err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 {
		t.Fatalf("failures %s, want exactly the struck shard", raw["failures"])
	}
	for _, key := range []string{"shard", "strikes", "reason"} {
		if _, ok := failures[0][key]; !ok {
			t.Fatalf("failure entry missing key %q in %s", key, raw["failures"])
		}
	}
	var report StatusReport
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if report.Shards != 2 || report.Failures[0].Strikes != 1 || report.Failures[0].Reason == "" {
		t.Fatalf("status = %+v", report)
	}
	if report.Failures[0].Quarantined {
		t.Fatalf("one strike must not quarantine: %+v", report)
	}
}

// TestEventsRingLifecycle drives lease grants and a forced expiry through
// the queue verbs (no simulation) and pins what the /events ring records.
func TestEventsRingLifecycle(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2), WithLeaseTTL(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := c.Lease("w1")
	c.mu.Lock()
	c.deadlines[g.LeaseID] = time.Time{} // the crash, observed
	c.mu.Unlock()
	g2, _ := c.Lease("w2") // sweeps the expiry, then grants
	if g2.LeaseID == "" {
		t.Fatalf("no lease after expiry: %+v", g2)
	}
	events := c.Events().Snapshot()
	var kinds []string
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	want := "lease,expire,lease"
	if got := strings.Join(kinds, ","); got != want {
		t.Fatalf("event kinds %q, want %q", got, want)
	}
	if events[1].Shard != g.Shard || events[1].Worker != "w1" {
		t.Fatalf("expire event %+v, want shard %d held by w1", events[1], g.Shard)
	}
	if c.Events().Total() != 3 {
		t.Fatalf("ring total %d, want 3", c.Events().Total())
	}
}

// TestWorkerStatsVersionSkew pins the stats side-channel's compatibility
// promise: an unknown snapshot version is dropped silently — the
// completion is still accepted — and only known-version stats feed the
// per-worker series.
func TestWorkerStatsVersionSkew(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	cl := Loopback(c)

	g, _ := c.Lease("future")
	future := &wire.WorkerStats{Version: wire.StatsVersion + 1, Worker: "future", Shard: g.Shard, Cells: 99}
	if err := cl.CompleteStats(g.LeaseID, batchFor(plan, g.Shard, 2), future); err != nil {
		t.Fatalf("completion with future-version stats rejected: %v", err)
	}
	g2, _ := c.Lease("present")
	batch := batchFor(plan, g2.Shard, 2)
	present := &wire.WorkerStats{Version: wire.StatsVersion, Worker: "present", Shard: g2.Shard, Cells: len(batch), RunMillis: 500}
	if err := cl.CompleteStats(g2.LeaseID, batch, present); err != nil {
		t.Fatalf("completion with current-version stats rejected: %v", err)
	}

	hc := &http.Client{Transport: loopbackTransport{h: c.Handler()}}
	resp, err := hc.Get("http://loopback/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_, labeled := scrapeBody(t, string(body))
	cells := labeled["turbulence_dispatch_worker_cells_total"]
	if _, ok := cells[`worker="future"`]; ok {
		t.Fatalf("future-version stats were counted: %v", cells)
	}
	if got := cells[`worker="present"`]; got != float64(len(batch)) {
		t.Fatalf(`worker="present" cells = %v, want %d (series %v)`, got, len(batch), cells)
	}
	if got := labeled["turbulence_dispatch_worker_throughput_cells_per_second"][`worker="present"`]; got != float64(len(batch))/0.5 {
		t.Fatalf("throughput = %v, want %v", got, float64(len(batch))/0.5)
	}
}
