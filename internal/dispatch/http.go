package dispatch

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"turbulence/internal/core"
	"turbulence/internal/wire"
)

// The HTTP wire: two POSTs and a status probe.
//
//	POST /lease     gob wire.LeaseRequest  → gob wire.LeaseGrant
//	POST /complete  EncodeRunsGob body     → gob wire.Ack
//	                (lease id and version travel in headers, so the body
//	                 is exactly the shard batch a shard process would
//	                 have written to a file)
//	GET  /status    → JSON {pending, leased, done, shards}
const (
	leaseHeader   = "X-Turbulence-Lease"
	versionHeader = "X-Turbulence-Wire-Version"
)

// Handler exposes the coordinator over HTTP.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req wire.LeaseRequest
		if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "dispatch: bad lease request: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.Version != wire.Version {
			http.Error(w, fmt.Sprintf("dispatch: wire version %d, coordinator speaks %d", req.Version, wire.Version), http.StatusBadRequest)
			return
		}
		grant, err := c.Lease(req.Worker)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := gob.NewEncoder(w).Encode(grant); err != nil {
			c.cfg.Logf("dispatch: encoding grant: %v", err)
		}
	})
	mux.HandleFunc("POST /complete", func(w http.ResponseWriter, r *http.Request) {
		ack := func(status int, err error) {
			a := wire.Ack{Version: wire.Version, OK: err == nil}
			if err != nil {
				a.Err = err.Error()
			}
			w.WriteHeader(status)
			if encErr := gob.NewEncoder(w).Encode(a); encErr != nil {
				c.cfg.Logf("dispatch: encoding ack: %v", encErr)
			}
		}
		if v, err := strconv.Atoi(r.Header.Get(versionHeader)); err != nil || v != wire.Version {
			ack(http.StatusBadRequest, fmt.Errorf("dispatch: wire version %q, coordinator speaks %d", r.Header.Get(versionHeader), wire.Version))
			return
		}
		leaseID := r.Header.Get(leaseHeader)
		if leaseID == "" {
			ack(http.StatusBadRequest, errors.New("dispatch: complete without "+leaseHeader+" header"))
			return
		}
		runs, err := wire.ReadGob(r.Body)
		if err != nil {
			ack(http.StatusBadRequest, fmt.Errorf("dispatch: bad complete body: %w", err))
			return
		}
		if err := c.Complete(leaseID, runs); err != nil {
			ack(http.StatusConflict, err)
			return
		}
		ack(http.StatusOK, nil)
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		pending, leased, done := c.Counts()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]int{
			"pending": pending, "leased": leased, "done": done, "shards": c.shards,
		})
	})
	return mux
}

// Client speaks the coordinator's HTTP wire and implements Queue. Calls
// retry transient failures (transport errors, 5xx) with exponential
// backoff up to MaxAttempts; 4xx/409 answers are protocol errors and fail
// immediately.
type Client struct {
	base string
	hc   *http.Client
	cfg  Config
}

// NewClient builds a client for a coordinator at base ("http://host:port";
// a bare "host:port" gets the scheme prepended). Relevant options:
// WithRetry, WithMaxAttempts, WithRequestTimeout, WithLogf.
func NewClient(base string, opts ...Option) *Client {
	cfg := newConfig(opts)
	return &Client{base: NormalizeBase(base), hc: &http.Client{Timeout: cfg.RequestTimeout}, cfg: cfg}
}

// NormalizeBase prepends http:// to a bare host:port, so -work addr and
// -serve addr can share spelling.
func NormalizeBase(base string) string {
	if base == "" {
		return base
	}
	for _, scheme := range []string{"http://", "https://"} {
		if len(base) >= len(scheme) && base[:len(scheme)] == scheme {
			return base
		}
	}
	return "http://" + base
}

// post sends one request with retry/backoff, returning the final
// response. A non-2xx status is returned (not retried) when the server
// answered 4xx — the coordinator rejected the request and repeating it
// cannot help.
func (cl *Client) post(path string, header http.Header, body func() (io.Reader, error)) (*http.Response, error) {
	backoff := cl.cfg.Retry
	var lastErr error
	for attempt := 0; attempt < cl.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff < 8*time.Second {
				backoff *= 2
			}
		}
		b, err := body()
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequest(http.MethodPost, cl.base+path, b)
		if err != nil {
			return nil, err
		}
		for k, vs := range header {
			req.Header[k] = vs
		}
		resp, err := cl.hc.Do(req)
		if err != nil {
			lastErr = err
			cl.cfg.Logf("dispatch: %s %s attempt %d: %v", cl.cfg.Name, path, attempt+1, err)
			continue
		}
		if resp.StatusCode >= 500 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			lastErr = fmt.Errorf("dispatch: %s: %s", resp.Status, msg)
			cl.cfg.Logf("dispatch: %s %s attempt %d: %v", cl.cfg.Name, path, attempt+1, lastErr)
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("dispatch: %s unreachable after %d attempts: %w", cl.base+path, cl.cfg.MaxAttempts, lastErr)
}

// Lease implements Queue over the wire.
func (cl *Client) Lease(worker string) (wire.LeaseGrant, error) {
	resp, err := cl.post("/lease", nil, func() (io.Reader, error) {
		return encodeGob(wire.LeaseRequest{Version: wire.Version, Worker: worker})
	})
	if err != nil {
		return wire.LeaseGrant{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return wire.LeaseGrant{}, fmt.Errorf("dispatch: lease rejected: %s: %s", resp.Status, msg)
	}
	var grant wire.LeaseGrant
	if err := gob.NewDecoder(resp.Body).Decode(&grant); err != nil {
		return wire.LeaseGrant{}, fmt.Errorf("dispatch: bad grant: %w", err)
	}
	return grant, nil
}

// Complete implements Queue over the wire: the body is exactly
// wire.WriteGob of the batch (EncodeRunsGob at the facade), identity in
// headers.
func (cl *Client) Complete(leaseID string, runs []wire.Run) error {
	header := http.Header{
		leaseHeader:   []string{leaseID},
		versionHeader: []string{strconv.Itoa(wire.Version)},
	}
	resp, err := cl.post("/complete", header, func() (io.Reader, error) {
		return encodeGobRuns(runs)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var a wire.Ack
	if err := gob.NewDecoder(resp.Body).Decode(&a); err != nil {
		return fmt.Errorf("dispatch: bad ack (%s): %w", resp.Status, err)
	}
	if !a.OK {
		return fmt.Errorf("dispatch: complete rejected: %s", a.Err)
	}
	return nil
}

// encodeGob / encodeGobRuns materialise a gob body. Encoding to a buffer
// (not a pipe) keeps body() restartable for retries.
func encodeGob(v any) (io.Reader, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return &buf, nil
}

func encodeGobRuns(runs []wire.Run) (io.Reader, error) {
	var buf bytes.Buffer
	if err := wire.WriteGob(&buf, runs); err != nil {
		return nil, err
	}
	return &buf, nil
}

// Serve runs a coordinator for plan over HTTP on addr until the sweep
// completes or ctx cancels (which drains: workers stop being issued
// leases), then returns the merged results — the one-call server side of
// the dispatcher, behind cmd/turbulence -serve. After completion the
// server lingers briefly (Config.Linger) so workers sleeping through a
// wait hint observe Done instead of a dead socket.
func Serve(ctx context.Context, addr string, plan *core.Plan, opts ...Option) ([]wire.Run, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeListener(ctx, ln, plan, opts...)
}

// ServeListener is Serve on an existing listener (tests use an ephemeral
// port; Serve wraps it for the common addr case). The listener is closed
// on return.
func ServeListener(ctx context.Context, ln net.Listener, plan *core.Plan, opts ...Option) ([]wire.Run, error) {
	c, err := New(plan, opts...)
	if err != nil {
		ln.Close()
		return nil, err
	}
	srv := &http.Server{Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	c.cfg.Logf("dispatch: coordinator serving %d shards (%d cells) on %s", c.shards, plan.Size(), ln.Addr())
	runs, waitErr := c.Wait(ctx)
	if waitErr == nil {
		// Completed: linger so the other workers' next poll sees Done.
		t := time.NewTimer(c.cfg.Linger)
		select {
		case <-t.C:
		case <-ctx.Done():
		}
		t.Stop()
	} else {
		// Drained mid-sweep: workers honouring their own graceful drain
		// are finishing a shard right now — keep accepting completions
		// until the outstanding leases resolve (or the grace runs out),
		// then re-merge so those landed shards make it into the output.
		deadline := time.Now().Add(c.cfg.DrainGrace)
		for time.Now().Before(deadline) {
			if _, leased, _ := c.Counts(); leased == 0 {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		runs = c.Collected()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			c.cfg.Logf("dispatch: server: %v", err)
		}
	default:
	}
	return runs, waitErr
}

// Work runs one worker loop against a coordinator at base until the sweep
// drains or ctx cancels — the one-call client side, behind cmd/turbulence
// -work. Returns how many shards this worker completed.
func Work(ctx context.Context, base string, opts ...Option) (int, error) {
	cl := NewClient(base, opts...)
	return NewWorker(cl, opts...).Run(ctx)
}
