package dispatch

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"turbulence/internal/core"
	"turbulence/internal/obs"
	"turbulence/internal/wire"
)

// The HTTP wire: three POSTs and a status probe.
//
//	POST /lease     gob wire.LeaseRequest  → gob wire.LeaseGrant
//	POST /renew     gob wire.RenewRequest  → gob wire.Ack
//	POST /complete  EncodeRunsGob body     → gob wire.Ack
//	                (lease id and version travel in headers, so the body
//	                 is exactly the shard batch a shard process would
//	                 have written to a file)
//	GET  /status    → JSON StatusReport
//
// Rejections come in two flavours, told apart by the retriable header: a
// body that would not decode may be transport corruption (a chaos-injected
// truncation, a reset mid-stream), so the 4xx carries the header and the
// client retries with a fresh copy; version mismatches, unknown leases and
// oversized bodies are deterministic and fail fast without it. Request
// bodies are capped (Config.MaxBodyBytes) before decoding, so an oversized
// or malicious body is a clean 413, never a coordinator OOM.
// Observability rides the same mux read-only:
//
//	GET  /metrics   → Prometheus text exposition (always on)
//	GET  /events    → JSON EventsReport, the shard-lifecycle ring
//	     /debug/pprof/*  (only with Config.Pprof)
//
// and a completing worker may attach its self-measured WorkerStats as a
// JSON header on POST /complete. The header is optional and versioned
// independently of the gob envelopes: coordinators that predate it never
// look, coordinators that postdate the worker ignore unknown versions —
// either skew degrades to "no per-worker stats", never to an error.
const (
	leaseHeader     = "X-Turbulence-Lease"
	versionHeader   = "X-Turbulence-Wire-Version"
	retriableHeader = "X-Turbulence-Retriable"
	statsHeader     = "X-Turbulence-Worker-Stats"
)

// ErrUnreachable marks a client call that exhausted its retry budget
// without a conclusive answer. Workers treat it as "the coordinator is
// gone": drain gracefully instead of crashing — the sweep's state lives
// on the coordinator (and its checkpoint), not here.
var ErrUnreachable = errors.New("dispatch: coordinator unreachable")

// errTransient wraps response-parsing failures that a retry can plausibly
// cure (a grant or ack body that did not decode — truncated or reset by
// the network). Status-level retries (5xx, retriable 4xx) are handled
// before parsing; this is the body-level counterpart.
var errTransient = errors.New("dispatch: transient response error")

// StatusReport is the GET /status body. Its JSON shape is pinned by
// TestStatusReportShape: operators script against these keys, so a field
// rename is a breaking change even though the Go type is internal.
type StatusReport struct {
	Pending     int            `json:"pending"`
	Leased      int            `json:"leased"`
	Done        int            `json:"done"`
	Shards      int            `json:"shards"`
	Epoch       string         `json:"epoch"`
	Quarantined []int          `json:"quarantined,omitempty"`
	Failures    []ShardFailure `json:"failures,omitempty"`
}

// ShardFailure is the /status detail for one struck shard.
type ShardFailure struct {
	Shard       int    `json:"shard"`
	Strikes     int    `json:"strikes"`
	Quarantined bool   `json:"quarantined"`
	Reason      string `json:"reason,omitempty"`
}

// EventsReport is the GET /events body: the retained shard-lifecycle
// events oldest-first, plus how many were ever recorded (total > len
// means the ring wrapped and the oldest history was shed).
type EventsReport struct {
	Total  int         `json:"total"`
	Events []obs.Event `json:"events"`
}

// Handler exposes the coordinator over HTTP.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req wire.LeaseRequest
		if err := gob.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)).Decode(&req); err != nil {
			w.Header().Set(retriableHeader, "1")
			http.Error(w, "dispatch: bad lease request: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.Version != wire.Version {
			http.Error(w, fmt.Sprintf("dispatch: wire version %d, coordinator speaks %d", req.Version, wire.Version), http.StatusBadRequest)
			return
		}
		grant, err := c.Lease(req.Worker)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := gob.NewEncoder(w).Encode(grant); err != nil {
			c.cfg.Logf("dispatch: encoding grant: %v", err)
		}
	})
	mux.HandleFunc("POST /renew", func(w http.ResponseWriter, r *http.Request) {
		ack := func(status int, err error) {
			a := wire.Ack{Version: wire.Version, OK: err == nil}
			if err != nil {
				a.Err = err.Error()
			}
			w.WriteHeader(status)
			if encErr := gob.NewEncoder(w).Encode(a); encErr != nil {
				c.cfg.Logf("dispatch: encoding ack: %v", encErr)
			}
		}
		var req wire.RenewRequest
		if err := gob.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)).Decode(&req); err != nil {
			w.Header().Set(retriableHeader, "1")
			ack(http.StatusBadRequest, fmt.Errorf("dispatch: bad renew request: %w", err))
			return
		}
		if req.Version != wire.Version {
			ack(http.StatusBadRequest, fmt.Errorf("dispatch: wire version %d, coordinator speaks %d", req.Version, wire.Version))
			return
		}
		if err := c.Renew(req.LeaseID, req.Worker); err != nil {
			ack(http.StatusConflict, err)
			return
		}
		ack(http.StatusOK, nil)
	})
	mux.HandleFunc("POST /complete", func(w http.ResponseWriter, r *http.Request) {
		ack := func(status int, err error) {
			a := wire.Ack{Version: wire.Version, OK: err == nil}
			if err != nil {
				a.Err = err.Error()
			}
			w.WriteHeader(status)
			if encErr := gob.NewEncoder(w).Encode(a); encErr != nil {
				c.cfg.Logf("dispatch: encoding ack: %v", encErr)
			}
		}
		if v, err := strconv.Atoi(r.Header.Get(versionHeader)); err != nil || v != wire.Version {
			ack(http.StatusBadRequest, fmt.Errorf("dispatch: wire version %q, coordinator speaks %d", r.Header.Get(versionHeader), wire.Version))
			return
		}
		leaseID := r.Header.Get(leaseHeader)
		if leaseID == "" {
			ack(http.StatusBadRequest, errors.New("dispatch: complete without "+leaseHeader+" header"))
			return
		}
		runs, err := wire.ReadGob(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
		if err != nil {
			// The batch never decoded: requeue the shard (with a strike)
			// so the work is not stranded behind a lease nobody can
			// resolve. A truncated body may be the wire's fault — mark it
			// retriable so the worker re-sends its intact copy; an
			// oversized one is deterministic and is not.
			var tooBig *http.MaxBytesError
			oversized := errors.As(err, &tooBig)
			if rejErr := c.Reject(leaseID, err); rejErr != nil {
				err = fmt.Errorf("%v (%v)", err, rejErr)
			}
			if oversized {
				ack(http.StatusRequestEntityTooLarge, fmt.Errorf("dispatch: complete body over %d bytes", c.cfg.MaxBodyBytes))
				return
			}
			w.Header().Set(retriableHeader, "1")
			ack(http.StatusBadRequest, fmt.Errorf("dispatch: bad complete body: %w", err))
			return
		}
		// The optional worker-stats header: malformed or unknown-version
		// snapshots are dropped, never rejected — stats are telemetry,
		// and a skewed worker's batch is still good.
		var stats *wire.WorkerStats
		if h := r.Header.Get(statsHeader); h != "" {
			var ws wire.WorkerStats
			if json.Unmarshal([]byte(h), &ws) == nil && ws.Version == wire.StatsVersion {
				stats = &ws
			}
		}
		if err := c.CompleteStats(leaseID, runs, stats); err != nil {
			ack(http.StatusConflict, err)
			return
		}
		ack(http.StatusOK, nil)
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		pending, leased, done := c.Counts()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(StatusReport{
			Pending: pending, Leased: leased, Done: done,
			Shards: c.shards, Epoch: c.epoch, Quarantined: c.Quarantined(),
			Failures: c.Failures(),
		})
	})
	mux.Handle("GET /metrics", c.m.reg.Handler())
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		events := c.m.ring.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(EventsReport{Total: c.m.ring.Total(), Events: events})
	})
	if c.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	}
	return mux
}

// Client speaks the coordinator's HTTP wire and implements Queue. Calls
// retry transient failures — transport errors, 5xx, retriable-marked 4xx,
// and response bodies that fail to decode — with jittered exponential
// backoff, bounded by both MaxAttempts and the MaxElapsed budget, and
// surface ErrUnreachable when the budget runs dry. Deterministic
// rejections (version mismatch, unknown lease) fail immediately.
type Client struct {
	base    string
	hc      *http.Client
	cfg     Config
	retries atomic.Uint64 // transport retries across all calls
}

// Retries reports how many retry attempts (beyond each call's first try)
// this client has spent, across all calls so far. Workers difference it
// around a shard to self-report retry pressure in WorkerStats.
func (cl *Client) Retries() uint64 { return cl.retries.Load() }

// NewClient builds a client for a coordinator at base ("http://host:port";
// a bare "host:port" gets the scheme prepended). Relevant options:
// WithRetry, WithMaxAttempts, WithRetryBudget, WithRequestTimeout,
// WithTransport, WithLogf.
func NewClient(base string, opts ...Option) *Client {
	cfg := newConfig(opts)
	hc := &http.Client{Timeout: cfg.RequestTimeout, Transport: cfg.Transport}
	return &Client{base: NormalizeBase(base), hc: hc, cfg: cfg}
}

// NormalizeBase prepends http:// to a bare host:port, so -work addr and
// -serve addr can share spelling.
func NormalizeBase(base string) string {
	if base == "" {
		return base
	}
	for _, scheme := range []string{"http://", "https://"} {
		if len(base) >= len(scheme) && base[:len(scheme)] == scheme {
			return base
		}
	}
	return "http://" + base
}

// call sends one request with retry/backoff and hands conclusive
// responses to parse. Retried: transport errors, 5xx, 4xx carrying the
// retriable header, and parse results wrapping errTransient (a body that
// did not decode). The backoff doubles with equal jitter — half fixed,
// half uniform random — so a fleet of workers facing one flapping
// coordinator spreads its retries instead of synchronising into storms.
// Both MaxAttempts and the MaxElapsed wall-clock budget bound the loop;
// exhausting either yields an ErrUnreachable-wrapped error.
func (cl *Client) call(path string, header http.Header, body func() (io.Reader, error), parse func(*http.Response) error) error {
	backoff := cl.cfg.Retry
	start := time.Now()
	var lastErr error
	attempts := 0
	for ; attempts < cl.cfg.MaxAttempts; attempts++ {
		if attempts > 0 {
			d := backoff/2 + rand.N(backoff/2+1)
			if time.Since(start)+d > cl.cfg.MaxElapsed {
				break
			}
			cl.retries.Add(1)
			time.Sleep(d)
			if backoff < 8*time.Second {
				backoff *= 2
			}
		}
		b, err := body()
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, cl.base+path, b)
		if err != nil {
			return err
		}
		for k, vs := range header {
			req.Header[k] = vs
		}
		resp, err := cl.hc.Do(req)
		if err != nil {
			lastErr = err
			cl.cfg.Logf("dispatch: %s %s attempt %d: %v", cl.cfg.Name, path, attempts+1, err)
			continue
		}
		if resp.StatusCode >= 500 || (resp.StatusCode >= 400 && resp.Header.Get(retriableHeader) != "") {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			lastErr = fmt.Errorf("dispatch: %s: %s", resp.Status, msg)
			cl.cfg.Logf("dispatch: %s %s attempt %d: %v", cl.cfg.Name, path, attempts+1, lastErr)
			continue
		}
		err = parse(resp)
		resp.Body.Close()
		if errors.Is(err, errTransient) {
			lastErr = err
			cl.cfg.Logf("dispatch: %s %s attempt %d: %v", cl.cfg.Name, path, attempts+1, err)
			continue
		}
		return err
	}
	return fmt.Errorf("%w: %s after %d attempts in %v: %v", ErrUnreachable, cl.base+path, attempts, time.Since(start).Round(time.Millisecond), lastErr)
}

// Lease implements Queue over the wire.
func (cl *Client) Lease(worker string) (wire.LeaseGrant, error) {
	var grant wire.LeaseGrant
	err := cl.call("/lease", nil,
		func() (io.Reader, error) {
			return encodeGob(wire.LeaseRequest{Version: wire.Version, Worker: worker})
		},
		func(resp *http.Response) error {
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				return fmt.Errorf("dispatch: lease rejected: %s: %s", resp.Status, msg)
			}
			if err := gob.NewDecoder(resp.Body).Decode(&grant); err != nil {
				return fmt.Errorf("%w: bad grant: %v", errTransient, err)
			}
			return nil
		})
	if err != nil {
		return wire.LeaseGrant{}, err
	}
	return grant, nil
}

// Renew implements Queue over the wire. Only the coordinator's 409 — its
// lease-loss verdict — maps to ErrLeaseLost; any other conclusive
// rejection (a wire-version mismatch) is the coordinator refusing to talk
// to this worker at all, not a verdict on the claim, and reporting it as
// lease loss would make a version-skewed worker abort healthy shards as
// orphaned instead of surfacing the fatal mismatch.
func (cl *Client) Renew(leaseID, worker string) error {
	return cl.call("/renew", nil,
		func() (io.Reader, error) {
			return encodeGob(wire.RenewRequest{Version: wire.Version, LeaseID: leaseID, Worker: worker})
		},
		func(resp *http.Response) error {
			var a wire.Ack
			if err := gob.NewDecoder(resp.Body).Decode(&a); err != nil {
				return fmt.Errorf("%w: bad ack (%s): %v", errTransient, resp.Status, err)
			}
			if a.OK {
				return nil
			}
			if resp.StatusCode == http.StatusConflict {
				return fmt.Errorf("%w: %s", ErrLeaseLost, a.Err)
			}
			return fmt.Errorf("dispatch: renew rejected: %s", a.Err)
		})
}

// Complete implements Queue over the wire: the body is exactly
// wire.WriteGob of the batch (EncodeRunsGob at the facade), identity in
// headers. Retried deliveries of an already-accepted batch are absorbed
// idempotently server-side, so a lost ack costs nothing.
func (cl *Client) Complete(leaseID string, runs []wire.Run) error {
	return cl.CompleteStats(leaseID, runs, nil)
}

// CompleteStats is Complete with the worker's self-measured shard stats
// riding as an optional JSON header (see statsHeader). Implements
// StatsQueue, so a Worker driving this client ships its measurements
// without any envelope change.
func (cl *Client) CompleteStats(leaseID string, runs []wire.Run, stats *wire.WorkerStats) error {
	header := http.Header{
		leaseHeader:   []string{leaseID},
		versionHeader: []string{strconv.Itoa(wire.Version)},
	}
	if stats != nil {
		if js, err := json.Marshal(stats); err == nil {
			header.Set(statsHeader, string(js))
		}
	}
	return cl.call("/complete", header,
		func() (io.Reader, error) { return encodeGobRuns(runs) },
		func(resp *http.Response) error {
			var a wire.Ack
			if err := gob.NewDecoder(resp.Body).Decode(&a); err != nil {
				return fmt.Errorf("%w: bad ack (%s): %v", errTransient, resp.Status, err)
			}
			if !a.OK {
				return fmt.Errorf("dispatch: complete rejected: %s", a.Err)
			}
			return nil
		})
}

// encodeGob / encodeGobRuns materialise a gob body. Encoding to a buffer
// (not a pipe) keeps body() restartable for retries.
func encodeGob(v any) (io.Reader, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return &buf, nil
}

func encodeGobRuns(runs []wire.Run) (io.Reader, error) {
	var buf bytes.Buffer
	if err := wire.WriteGob(&buf, runs); err != nil {
		return nil, err
	}
	return &buf, nil
}

// Serve runs a coordinator for plan over HTTP on addr until the sweep
// completes or ctx cancels (which drains: workers stop being issued
// leases), then returns the merged results — the one-call server side of
// the dispatcher, behind cmd/turbulence -serve. After completion the
// server lingers briefly (Config.Linger) so workers sleeping through a
// wait hint observe Done instead of a dead socket.
func Serve(ctx context.Context, addr string, plan *core.Plan, opts ...Option) ([]wire.Run, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeListener(ctx, ln, plan, opts...)
}

// ServeListener is Serve on an existing listener (tests use an ephemeral
// port; Serve wraps it for the common addr case). The listener is closed
// on return.
func ServeListener(ctx context.Context, ln net.Listener, plan *core.Plan, opts ...Option) ([]wire.Run, error) {
	c, err := New(plan, opts...)
	if err != nil {
		ln.Close()
		return nil, err
	}
	defer c.Close()
	srv := &http.Server{Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	c.cfg.Logf("dispatch: coordinator serving %d shards (%d cells) on %s (epoch %s)", c.shards, plan.Size(), ln.Addr(), c.epoch)
	runs, waitErr := c.Wait(ctx)
	if waitErr == nil {
		// Completed: linger so the other workers' next poll sees Done.
		t := time.NewTimer(c.cfg.Linger)
		select {
		case <-t.C:
		case <-ctx.Done():
		}
		t.Stop()
	} else {
		// Drained mid-sweep: workers honouring their own graceful drain
		// are finishing a shard right now — keep accepting completions
		// until the outstanding leases resolve (or the grace runs out),
		// then re-merge so those landed shards make it into the output.
		deadline := time.Now().Add(c.cfg.DrainGrace)
		for time.Now().Before(deadline) {
			if _, leased, _ := c.Counts(); leased == 0 {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		runs = c.Collected()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			c.cfg.Logf("dispatch: server: %v", err)
		}
	default:
	}
	return runs, waitErr
}

// Work runs one worker loop against a coordinator at base until the sweep
// drains or ctx cancels — the one-call client side, behind cmd/turbulence
// -work. Returns how many shards this worker completed.
func Work(ctx context.Context, base string, opts ...Option) (int, error) {
	cl := NewClient(base, opts...)
	return NewWorker(cl, opts...).Run(ctx)
}
