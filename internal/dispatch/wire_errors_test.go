package dispatch

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"turbulence/internal/wire"
)

// postRaw sends body to path on c's handler with the given headers and
// returns the response, fully read.
func postRaw(t *testing.T, c *Coordinator, path string, header map[string]string, body []byte) (*http.Response, []byte) {
	t.Helper()
	hc := &http.Client{Transport: loopbackTransport{h: c.Handler()}}
	req, err := http.NewRequest(http.MethodPost, "http://loopback"+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func decodeAck(t *testing.T, b []byte) wire.Ack {
	t.Helper()
	var a wire.Ack
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&a); err != nil {
		t.Fatalf("ack did not decode: %v (%d bytes)", err, len(b))
	}
	return a
}

// TestWireMalformedBodies pins the handler hardening: garbage and
// truncated gob on every POST answer a clean 4xx — marked retriable, since
// the wire may have eaten the bytes — with no panic and no stranded shard.
func TestWireMalformedBodies(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}

	// Garbage /lease body: retriable 400, plain-text error.
	resp, _ := postRaw(t, c, "/lease", nil, []byte("\x01\x02 not gob"))
	if resp.StatusCode != http.StatusBadRequest || resp.Header.Get(retriableHeader) == "" {
		t.Fatalf("garbage lease: %s retriable=%q", resp.Status, resp.Header.Get(retriableHeader))
	}
	// Garbage /renew body: retriable 400 with a decodable rejecting ack.
	resp, body := postRaw(t, c, "/renew", nil, []byte("junk"))
	if resp.StatusCode != http.StatusBadRequest || resp.Header.Get(retriableHeader) == "" {
		t.Fatalf("garbage renew: %s retriable=%q", resp.Status, resp.Header.Get(retriableHeader))
	}
	if a := decodeAck(t, body); a.OK {
		t.Fatal("garbage renew acked OK")
	}

	// Truncated /complete body: the shard must come back leasable under the
	// same lease's retry or a fresh one — not wedge behind a dead claim.
	g, _ := c.Lease("w")
	if g.LeaseID == "" {
		t.Fatalf("no lease: %+v", g)
	}
	full, err := encodeGobRuns(batchFor(plan, g.Shard, g.Shards))
	if err != nil {
		t.Fatal(err)
	}
	whole, _ := io.ReadAll(full)
	header := map[string]string{
		leaseHeader:   g.LeaseID,
		versionHeader: strconv.Itoa(wire.Version),
	}
	resp, body = postRaw(t, c, "/complete", header, whole[:len(whole)/2])
	if resp.StatusCode != http.StatusBadRequest || resp.Header.Get(retriableHeader) == "" {
		t.Fatalf("truncated complete: %s retriable=%q", resp.Status, resp.Header.Get(retriableHeader))
	}
	if a := decodeAck(t, body); a.OK {
		t.Fatal("truncated complete acked OK")
	}
	// The worker retries the same lease with the intact copy: accepted.
	resp, body = postRaw(t, c, "/complete", header, whole)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("intact retry after truncation: %s", resp.Status)
	}
	if a := decodeAck(t, body); !a.OK {
		t.Fatalf("intact retry rejected: %+v", a)
	}

	// The queue survived all of it: the other shard completes normally.
	g2, _ := c.Lease("w")
	if g2.LeaseID == "" {
		t.Fatalf("queue wedged after malformed traffic: %+v", g2)
	}
	if err := c.Complete(g2.LeaseID, batchFor(plan, g2.Shard, g2.Shards)); err != nil {
		t.Fatal(err)
	}
	if !c.Done() {
		t.Fatal("sweep not done")
	}
}

// TestWireOversizedBody pins the body cap: a /complete body over
// MaxBodyBytes answers 413 without the retriable marker (re-sending the
// same elephant will not help) and without ballooning coordinator memory.
func TestWireOversizedBody(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2), WithMaxBodyBytes(1024))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := c.Lease("w")
	if g.LeaseID == "" {
		t.Fatalf("no lease: %+v", g)
	}
	// A well-formed gob batch far over the cap: the decoder must hit the
	// byte limit, not a parse error, so the rejection is deterministic.
	big, err := encodeGobRuns([]wire.Run{{Index: g.Shard, Err: strings.Repeat("A", 1<<20)}})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(big)
	header := map[string]string{
		leaseHeader:   g.LeaseID,
		versionHeader: strconv.Itoa(wire.Version),
	}
	resp, ackBytes := postRaw(t, c, "/complete", header, body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized complete: %s, want 413", resp.Status)
	}
	if resp.Header.Get(retriableHeader) != "" {
		t.Fatal("oversized complete marked retriable")
	}
	if a := decodeAck(t, ackBytes); a.OK {
		t.Fatal("oversized complete acked OK")
	}
	// The shard is back in the queue for an honest worker.
	g2, _ := c.Lease("w")
	if g2.LeaseID == "" || g2.Shard != g.Shard {
		t.Fatalf("oversized shard not requeued: %+v", g2)
	}
}

// TestWireRenewAndHeaderErrors pins the remaining 4xx paths: renewing an
// unknown lease is a conclusive 409, /complete without its identity
// headers is a conclusive 400, and an unknown wire version is refused on
// every verb.
func TestWireRenewAndHeaderErrors(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire.RenewRequest{Version: wire.Version, LeaseID: "lease-feed-1-shard-0", Worker: "x"}); err != nil {
		t.Fatal(err)
	}
	resp, body := postRaw(t, c, "/renew", nil, buf.Bytes())
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unknown-lease renew: %s, want 409", resp.Status)
	}
	if a := decodeAck(t, body); a.OK || a.Err == "" {
		t.Fatalf("unknown-lease renew ack: %+v", a)
	}

	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(wire.RenewRequest{Version: wire.Version + 7, LeaseID: "x", Worker: "x"}); err != nil {
		t.Fatal(err)
	}
	resp, body = postRaw(t, c, "/renew", nil, buf.Bytes())
	if resp.StatusCode != http.StatusBadRequest || resp.Header.Get(retriableHeader) != "" {
		t.Fatalf("version-mismatch renew: %s retriable=%q", resp.Status, resp.Header.Get(retriableHeader))
	}
	if a := decodeAck(t, body); a.OK {
		t.Fatal("version-mismatch renew acked OK")
	}

	// /complete without a lease header, and with an unparsable version.
	resp, body = postRaw(t, c, "/complete", map[string]string{versionHeader: strconv.Itoa(wire.Version)}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("complete without lease header: %s", resp.Status)
	}
	if a := decodeAck(t, body); a.OK {
		t.Fatal("complete without lease header acked OK")
	}
	resp, body = postRaw(t, c, "/complete", map[string]string{leaseHeader: "l", versionHeader: "banana"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("complete with garbage version: %s", resp.Status)
	}
	if a := decodeAck(t, body); a.OK {
		t.Fatal("complete with garbage version acked OK")
	}
}

// TestRejectDuplicateOneStrike pins Reject's per-lease idempotency: the
// chaos transport duplicates requests, so the same undecodable delivery
// can reach the coordinator twice — one failure, one strike, not an
// accelerated march into quarantine. The lease stays retryable: the
// intact copy still lands.
func TestRejectDuplicateOneStrike(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2), WithMaxShardFailures(2))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := c.Lease("w")
	if g.LeaseID == "" {
		t.Fatalf("no lease: %+v", g)
	}
	reason := errors.New("unexpected EOF")
	if err := c.Reject(g.LeaseID, reason); err != nil {
		t.Fatal(err)
	}
	if err := c.Reject(g.LeaseID, reason); err != nil { // the duplicate
		t.Fatal(err)
	}
	c.mu.Lock()
	strikes := c.strikes[g.Shard]
	c.mu.Unlock()
	if strikes != 1 {
		t.Fatalf("duplicate reject charged %d strikes, want 1", strikes)
	}
	if parked := c.Quarantined(); len(parked) != 0 {
		t.Fatalf("duplicate reject quarantined shard %v", parked)
	}
	if err := c.Complete(g.LeaseID, batchFor(plan, g.Shard, g.Shards)); err != nil {
		t.Fatalf("intact retry after rejects: %v", err)
	}
}

// TestRenewVersionMismatchNotLeaseLost pins the client-side triage of a
// conclusive renew rejection: only the coordinator's 409 lease-loss
// verdict is ErrLeaseLost; a wire-version rejection (400) must surface as
// its own fatal error, or a version-skewed worker would abort every
// healthy shard as orphaned.
func TestRenewVersionMismatchNotLeaseLost(t *testing.T) {
	reject := func(w http.ResponseWriter, status int, msg string) {
		w.WriteHeader(status)
		gob.NewEncoder(w).Encode(wire.Ack{Version: wire.Version, OK: false, Err: msg})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /renew", func(w http.ResponseWriter, r *http.Request) {
		reject(w, http.StatusBadRequest, "dispatch: wire version 99, coordinator speaks 1")
	})
	cl := NewClient("http://loopback", WithTransport(loopbackTransport{h: mux}), WithMaxAttempts(1))
	err := cl.Renew("lease-feed-1-shard-0", "w")
	if err == nil {
		t.Fatal("version-mismatch renew succeeded")
	}
	if errors.Is(err, ErrLeaseLost) {
		t.Fatalf("version mismatch reported as lease loss: %v", err)
	}

	// The real coordinator's unknown-lease 409 still maps to ErrLeaseLost.
	plan := testPlan(t)
	c, err := New(plan, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	cl = Loopback(c, WithMaxAttempts(1))
	if err := cl.Renew("lease-feed-1-shard-0", "w"); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("unknown-lease renew: %v, want ErrLeaseLost", err)
	}
}

// TestStatusReportsQuarantine pins /status as the operator's view of a
// degraded sweep: epoch, carve, progress and the parked shards.
func TestStatusReportsQuarantine(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2), WithMaxShardFailures(1))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := c.Lease("w")
	if err := c.Complete(g.LeaseID, nil); err == nil { // strike 1 → parked
		t.Fatal("short batch accepted")
	}
	hc := &http.Client{Transport: loopbackTransport{h: c.Handler()}}
	resp, err := hc.Get("http://loopback/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusReport
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || st.Epoch != c.Epoch() {
		t.Fatalf("status carve/epoch: %+v", st)
	}
	if len(st.Quarantined) != 1 || st.Quarantined[0] != g.Shard {
		t.Fatalf("status quarantine: %+v, want shard %d parked", st, g.Shard)
	}
}
