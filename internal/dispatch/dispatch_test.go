package dispatch

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/netem"
	"turbulence/internal/wire"
)

// testPlan is the dispatch suite's run space: 3 pairs × (faithful + dsl)
// = 6 cells, small enough to run many times, rich enough that canonical
// order, scenario labels and per-cell seeds all matter.
func testPlan(t *testing.T) *core.Plan {
	t.Helper()
	dsl, err := netem.Find("dsl")
	if err != nil {
		t.Fatal(err)
	}
	return core.NewPlan(7).
		ForPairs(
			core.PairKey{Set: 1, Class: media.Low},
			core.PairKey{Set: 3, Class: media.Low},
			core.PairKey{Set: 2, Class: media.High},
		).
		UnderScenarios(nil, dsl)
}

// unshardedGob is the ground truth: a single-process Runner.Run of the
// plan under StreamProfiles, flattened to wire shape and gob-encoded.
func unshardedGob(t *testing.T, plan *core.Plan) []byte {
	t.Helper()
	results, err := core.NewRunner(
		core.WithWorkers(0),
		core.WithTraceRetention(core.StreamProfiles),
	).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wire.WriteGob(&buf, wire.FromResults(results)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDispatchedSweepMatchesUnsharded is the headline pin: a coordinator
// plus N pulling workers — including one that takes a lease and dies —
// collect results byte-identical to a single-process Runner.Run.
// Determinism survives distribution, worker death, lease requeue and
// out-of-order completion.
func TestDispatchedSweepMatchesUnsharded(t *testing.T) {
	plan := testPlan(t)
	want := unshardedGob(t, plan)

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// The TTL is generous so a slow-but-alive worker is never
			// double-leased (that would break the completed-shard count);
			// the dead worker's expiry is forced below, and real-TTL
			// expiry is pinned by TestLeaseExpiryAndLateCompletion.
			c, err := New(plan,
				WithShards(4),
				WithLeaseTTL(time.Minute),
				WithRetry(10*time.Millisecond),
			)
			if err != nil {
				t.Fatal(err)
			}

			// A worker leases a shard and dies mid-lease: its claim must
			// expire and the shard reach a live worker.
			dead := Loopback(c, WithName("doomed"))
			grant, err := dead.Lease("doomed")
			if err != nil {
				t.Fatal(err)
			}
			if grant.LeaseID == "" {
				t.Fatalf("doomed worker got no work: %+v", grant)
			}
			c.mu.Lock()
			c.deadlines[grant.LeaseID] = time.Time{} // the crash, observed
			c.mu.Unlock()

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			var wg sync.WaitGroup
			completed := make([]int, workers)
			errs := make([]error, workers)
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					w := NewWorker(Loopback(c),
						WithName(fmt.Sprintf("w%d", i)),
						WithRunWorkers(1),
						WithRetry(10*time.Millisecond),
					)
					completed[i], errs[i] = w.Run(ctx)
				}()
			}
			merged, err := c.Wait(ctx)
			if err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			total := 0
			for i := range errs {
				if errs[i] != nil {
					t.Fatalf("worker %d: %v", i, errs[i])
				}
				total += completed[i]
			}
			if total != 4 {
				t.Fatalf("workers completed %d shards, want 4 (the dead worker's shard must be re-done)", total)
			}

			var buf bytes.Buffer
			if err := wire.WriteGob(&buf, merged); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("dispatched sweep differs from unsharded run (%d vs %d bytes)", buf.Len(), len(want))
			}
		})
	}
}

// TestLeaseExpiryAndLateCompletion pins the lease lifecycle corner cases:
// expired leases requeue their shard, a late completion on an expired
// lease is still accepted when the shard is open (work is not wasted), a
// duplicate completion after reissue is an idempotent no-op, and unknown
// leases are rejected.
func TestLeaseExpiryAndLateCompletion(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2), WithLeaseTTL(40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := c.Lease("a")
	g2, _ := c.Lease("b")
	if g1.LeaseID == "" || g2.LeaseID == "" {
		t.Fatalf("expected two grants, got %+v / %+v", g1, g2)
	}
	if g, _ := c.Lease("c"); !g.Wait {
		t.Fatalf("queue exhausted but lease did not say wait: %+v", g)
	}

	time.Sleep(50 * time.Millisecond) // both leases expire

	// The shard comes back under a fresh lease.
	g3, _ := c.Lease("c")
	if g3.LeaseID == "" {
		t.Fatalf("expired shard was not requeued: %+v", g3)
	}
	if pending, leased, done := c.Counts(); leased != 1 || done != 0 || pending != 1 {
		t.Fatalf("counts after expiry: pending=%d leased=%d done=%d", pending, leased, done)
	}

	// fakeRuns builds a plausible batch for a shard (profiles don't
	// matter to the queue; indices and count do).
	fakeRuns := func(shard, shards int) []wire.Run {
		var runs []wire.Run
		for _, k := range plan.Shard(shard, shards).Keys() {
			runs = append(runs, wire.Run{Index: k.Index, Set: k.Pair.Set, Class: k.Pair.Class.String(),
				Comparison: &core.Comparison{Set: k.Pair.Set}})
		}
		return runs
	}

	// Late completion on the expired g1: accepted, because its shard is
	// still open somewhere.
	if err := c.Complete(g1.LeaseID, fakeRuns(g1.Shard, g1.Shards)); err != nil {
		t.Fatalf("late completion rejected: %v", err)
	}
	// The reissued lease for the same shard now lands on a done shard:
	// idempotent no-op (g3 covers whichever shard expired first; complete
	// both old grants, then g3's duplicate must be absorbed).
	if err := c.Complete(g2.LeaseID, fakeRuns(g2.Shard, g2.Shards)); err != nil {
		t.Fatalf("late completion rejected: %v", err)
	}
	if err := c.Complete(g3.LeaseID, fakeRuns(g3.Shard, g3.Shards)); err != nil {
		t.Fatalf("duplicate completion not absorbed: %v", err)
	}
	if !c.Done() {
		t.Fatal("coordinator not done after both shards completed")
	}
	if err := c.Complete("lease-999-shard-0", nil); err == nil {
		t.Fatal("unknown lease accepted")
	}
	if g, _ := c.Lease("d"); !g.Done {
		t.Fatalf("lease after completion should say done: %+v", g)
	}
}

// TestLeaseSkipsDoneShards pins the requeue/late-complete interleaving:
// a shard whose lease expired sits in pending; its presumed-dead worker's
// completion then lands; the next lease must skip the (done) shard rather
// than re-issue it and burn a worker on already-collected cells.
func TestLeaseSkipsDoneShards(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := c.Lease("a")
	c.mu.Lock()
	c.deadlines[g1.LeaseID] = time.Time{}
	c.mu.Unlock()
	c.Counts() // expiry scan requeues g1's shard into pending
	var runs []wire.Run
	for _, k := range plan.Shard(g1.Shard, g1.Shards).Keys() {
		runs = append(runs, wire.Run{Index: k.Index, Set: k.Pair.Set, Class: k.Pair.Class.String()})
	}
	if err := c.Complete(g1.LeaseID, runs); err != nil {
		t.Fatalf("late completion rejected: %v", err)
	}
	g2, _ := c.Lease("b")
	if g2.LeaseID == "" {
		t.Fatalf("expected a grant for an open shard, got %+v", g2)
	}
	if g2.Shard == g1.Shard {
		t.Fatalf("done shard %d re-leased", g1.Shard)
	}
}

// TestCompleteRejectsBadBatches pins the collector's protocol checks:
// short batches with no explaining error, and cells outside the leased
// shard, are rejected and the shard requeued.
func TestCompleteRejectsBadBatches(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := c.Lease("a")
	if err := c.Complete(g.LeaseID, nil); err == nil {
		t.Fatal("short batch accepted")
	}
	g2, _ := c.Lease("a")
	if g2.Shard != g.Shard {
		t.Fatalf("rejected shard not requeued first: got %d, want %d", g2.Shard, g.Shard)
	}
	bad := []wire.Run{{Index: g2.Shard + 1}} // wrong stride residue
	if err := c.Complete(g2.LeaseID, bad); err == nil {
		t.Fatal("out-of-shard cell accepted")
	}
	// A short batch that carries a cell error is a fail-fast result, not
	// a protocol violation.
	g3, _ := c.Lease("a")
	failed := []wire.Run{{Index: g3.Shard, Err: "boom"}}
	if err := c.Complete(g3.LeaseID, failed); err != nil {
		t.Fatalf("fail-fast batch rejected: %v", err)
	}
}

// TestWireVersionMismatch drives the HTTP wire (over the loopback — no
// sockets) with wrong versions on both endpoints and pins the loud
// rejections.
func TestWireVersionMismatch(t *testing.T) {
	c, err := New(testPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	hc := &http.Client{Transport: loopbackTransport{h: c.Handler()}}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire.LeaseRequest{Version: wire.Version + 1, Worker: "x"}); err != nil {
		t.Fatal(err)
	}
	resp, err := hc.Post("http://loopback/lease", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("lease with wrong version: %s", resp.Status)
	}

	req, _ := http.NewRequest(http.MethodPost, "http://loopback/complete", bytes.NewReader(nil))
	req.Header.Set("X-Turbulence-Lease", "lease-1-shard-0")
	req.Header.Set("X-Turbulence-Wire-Version", strconv.Itoa(wire.Version+1))
	resp, err = hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("complete with wrong version: %s", resp.Status)
	}
	var a wire.Ack
	if err := gob.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	if a.OK || a.Err == "" {
		t.Fatalf("expected rejecting ack, got %+v", a)
	}
}

// TestWaitDrainsOnCancel pins the graceful-drain path: cancelling the
// collector's context returns the partial merge and flips the queue to
// Done for every pulling worker.
func TestWaitDrainsOnCancel(t *testing.T) {
	c, err := New(testPlan(t), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs, err := c.Wait(ctx)
	if err != context.Canceled {
		t.Fatalf("Wait on cancelled ctx: %v", err)
	}
	if len(runs) != 0 {
		t.Fatalf("no shards completed but Wait returned %d runs", len(runs))
	}
	if g, _ := c.Lease("w"); !g.Done {
		t.Fatalf("drained coordinator still leasing: %+v", g)
	}
}

// TestServeListenerEndToEnd runs the real HTTP server on an ephemeral
// localhost port with one in-process worker — the socket path the CI
// smoke job exercises across processes, pinned here in miniature.
func TestServeListenerEndToEnd(t *testing.T) {
	plan := core.NewPlan(7).ForPairs(core.PairKey{Set: 1, Class: media.Low})
	want := unshardedGob(t, plan)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on localhost: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	base := "http://" + ln.Addr().String()
	done := make(chan struct{})
	var workErr error
	go func() {
		defer close(done)
		_, workErr = Work(ctx, base,
			WithName("sock"),
			WithRunWorkers(1),
			WithRetry(20*time.Millisecond),
		)
	}()
	runs, err := ServeListener(ctx, ln, plan, WithLinger(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if workErr != nil {
		t.Fatal(workErr)
	}
	var buf bytes.Buffer
	if err := wire.WriteGob(&buf, runs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("served sweep differs from unsharded run")
	}
}
