package dispatch

import (
	"bytes"
	"io"
	"net/http"
)

// Loopback binds a Client directly to a coordinator's HTTP handler: every
// round trip is served synchronously in-process, so the full wire path —
// gob envelopes, headers, status codes, version checks — runs with no
// sockets. Tests and single-process demos use it to drive coordinator +
// workers exactly as a cluster would.
func Loopback(c *Coordinator, opts ...Option) *Client {
	cl := NewClient("http://loopback", opts...)
	if cl.hc.Transport == nil {
		cl.hc.Transport = loopbackTransport{h: c.Handler()}
	}
	return cl
}

// LoopbackTransport exposes the coordinator's handler as a RoundTripper,
// for callers that want to wrap it (the chaos harness injects faults
// between a loopback client and its coordinator exactly this way) before
// handing it back via WithTransport.
func LoopbackTransport(c *Coordinator) http.RoundTripper {
	return loopbackTransport{h: c.Handler()}
}

type loopbackTransport struct{ h http.Handler }

func (t loopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &memResponse{code: http.StatusOK, header: make(http.Header)}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		Status:     http.StatusText(rec.code),
		StatusCode: rec.code,
		Proto:      req.Proto,
		ProtoMajor: req.ProtoMajor,
		ProtoMinor: req.ProtoMinor,
		Header:     rec.header,
		Body:       io.NopCloser(&rec.body),
		Request:    req,
	}, nil
}

// memResponse is the minimal in-memory http.ResponseWriter the loopback
// needs (net/http/httptest is test-only; examples use the loopback too).
type memResponse struct {
	code   int
	wrote  bool
	header http.Header
	body   bytes.Buffer
}

func (m *memResponse) Header() http.Header { return m.header }

func (m *memResponse) WriteHeader(code int) {
	if !m.wrote {
		m.code, m.wrote = code, true
	}
}

func (m *memResponse) Write(p []byte) (int, error) {
	m.wrote = true
	return m.body.Write(p)
}
