package dispatch

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"strings"
	"testing"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/netem"
	"turbulence/internal/wire"
)

// TestDispatchSmokeGoldenDigest pins the unsharded half of the CI
// dispatch-smoke gate. The smoke job runs `turbulence -serve` + two
// `-work` processes over localhost on exactly this plan and asserts the
// merged JSON's sha256 equals testdata/dispatch_smoke.sha256; this test
// asserts the committed digest IS the unsharded single-process output.
// Together they close the loop: distributed == golden == unsharded, and
// any engine change that shifts the sweep's bytes must re-bless the
// golden here, not in CI.
//
// The plan must stay in lockstep with scripts/dispatch_smoke.sh:
//
//	-seed 7 -pairs 1/low,3/low,2/high,5/high -scenario dsl
func TestDispatchSmokeGoldenDigest(t *testing.T) {
	dsl, err := netem.Find("dsl")
	if err != nil {
		t.Fatal(err)
	}
	plan := core.NewPlan(7).
		ForPairs(
			core.PairKey{Set: 1, Class: media.Low},
			core.PairKey{Set: 3, Class: media.Low},
			core.PairKey{Set: 2, Class: media.High},
			core.PairKey{Set: 5, Class: media.High},
		).
		UnderScenarios(dsl)
	results, err := core.NewRunner(
		core.WithWorkers(0),
		core.WithTraceRetention(core.StreamProfiles),
	).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the bytes `turbulence -serve` prints: one JSON array of
	// wire runs in canonical order.
	var buf bytes.Buffer
	if err := wire.WriteJSON(&buf, wire.FromResults(results)); err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))

	raw, err := os.ReadFile("../../testdata/dispatch_smoke.sha256")
	if err != nil {
		t.Fatalf("golden digest missing (recompute: see this test): %v", err)
	}
	want := strings.Fields(string(raw))[0]
	if got != want {
		t.Fatalf("unsharded smoke-plan digest %s, committed golden %s\n"+
			"If the engine's output legitimately changed, re-bless with:\n"+
			"  echo %s > testdata/dispatch_smoke.sha256", got, want, got)
	}
}
