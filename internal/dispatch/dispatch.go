// Package dispatch turns a Plan into a pull-based work queue: a
// coordinator leases shards to workers over HTTP (or an in-process
// loopback), collects each shard's wire-encoded results, and merges them
// back into the canonical unsharded order.
//
// PR 3's Plan.Shard gave sweeps static fan-out: n processes, each told its
// (i, n) up front. That shape wastes hardware the moment machines differ —
// the fastest worker idles while the slowest grinds — and loses a shard
// outright when a worker dies. The dispatcher inverts it: the coordinator
// holds the one unsharded Plan, carves it into many more shards than
// workers, and workers *pull*. Each lease grants one strided shard plus
// the full PlanSpec; the worker reconstructs the plan locally, runs its
// slice under StreamProfiles retention (O(analyzer-state) memory, no
// traces), and ships the wire.Run batch home. Leases expire: a worker that
// dies mid-shard simply stops renewing its claim, and the coordinator
// re-issues the shard to the next puller. Because every cell's seed and
// Index come from the Plan — not from which worker ran it or when — the
// merged output is byte-identical to a single-process Runner.Run, no
// matter how leases interleave, expire or duplicate.
//
// The pieces compose at three levels: Coordinator/Worker as library types
// (any Queue transport), Handler/Client as the HTTP wire (gob envelopes
// from internal/wire, versioned), and Serve/Work as the one-call entry
// points cmd/turbulence exposes as -serve and -work. Loopback binds a
// Client directly to a Coordinator's handler for tests and single-process
// demos — the full wire path, no sockets.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"turbulence/internal/core"
	"turbulence/internal/wire"
)

// Queue is the coordinator API a worker pulls from: the Coordinator
// itself, or a Client speaking the HTTP wire to a remote one.
type Queue interface {
	// Lease asks for a shard. The grant is exactly one of: work (LeaseID
	// set), a wait hint (Wait set), or the drain signal (Done set).
	Lease(worker string) (wire.LeaseGrant, error)
	// Complete delivers a leased shard's results.
	Complete(leaseID string, runs []wire.Run) error
}

// Config collects the dispatcher knobs; Options adjust it. One Config type
// serves Coordinator, Worker and Client — each reads the fields that
// concern it.
type Config struct {
	// Shards is the lease granularity: how many strided slices the plan is
	// carved into. More shards than workers is the point — it is what lets
	// fast machines pull more than their share. 0 means one shard per cell,
	// capped at 256.
	Shards int
	// LeaseTTL is how long a shard stays claimed with no Complete before
	// the coordinator assumes the worker died and re-issues it. It bounds
	// how long a dead worker can stall a sweep, so it must comfortably
	// exceed one shard's runtime. Default 2m.
	LeaseTTL time.Duration
	// Retry is the worker's poll interval while the queue has nothing
	// leasable, and the client's backoff base for transport errors.
	// Default 200ms.
	Retry time.Duration
	// MaxAttempts bounds consecutive transport failures before a Client
	// call gives up. Default 8.
	MaxAttempts int
	// RequestTimeout bounds one HTTP round trip on the Client, so a
	// partitioned coordinator (connected but blackholed) turns into a
	// retriable error instead of a worker hung past every ctrl-C. Bodies
	// are profiles, a few KB per cell, so the default 60s is generous.
	RequestTimeout time.Duration
	// RunWorkers is the worker's Runner pool size per shard (0 = all
	// cores).
	RunWorkers int
	// RunContext hard-cancels in-flight simulation on a worker (the
	// second ctrl-C). The context passed to Worker.Run only drains — the
	// current shard still finishes and ships. Default: never.
	RunContext context.Context
	// Name identifies the worker in coordinator logs and status.
	Name string
	// Linger is how long Serve keeps answering after the sweep completes,
	// so workers sleeping through a wait hint observe Done instead of a
	// dead socket. Default 1s.
	Linger time.Duration
	// DrainGrace is how long Serve keeps accepting completions after a
	// cancellation drain, so workers finishing their current shard (the
	// graceful half of their own ctrl-C handling) can still land it
	// before the socket dies. Default 15s.
	DrainGrace time.Duration
	// Logf receives progress lines (default: none).
	Logf func(format string, args ...any)
}

// Option adjusts a Config.
type Option func(*Config)

// WithShards sets the lease granularity (see Config.Shards).
func WithShards(n int) Option { return func(c *Config) { c.Shards = n } }

// WithLeaseTTL sets the lease expiry (see Config.LeaseTTL).
func WithLeaseTTL(d time.Duration) Option { return func(c *Config) { c.LeaseTTL = d } }

// WithRetry sets the poll/backoff base interval.
func WithRetry(d time.Duration) Option { return func(c *Config) { c.Retry = d } }

// WithMaxAttempts bounds consecutive transport failures per client call.
func WithMaxAttempts(n int) Option { return func(c *Config) { c.MaxAttempts = n } }

// WithRequestTimeout bounds one client HTTP round trip.
func WithRequestTimeout(d time.Duration) Option { return func(c *Config) { c.RequestTimeout = d } }

// WithRunWorkers sets the per-shard Runner pool size (0 = all cores).
func WithRunWorkers(n int) Option { return func(c *Config) { c.RunWorkers = n } }

// WithRunContext installs the hard-cancel context for in-flight simulation.
func WithRunContext(ctx context.Context) Option { return func(c *Config) { c.RunContext = ctx } }

// WithName sets the worker identity used in logs and status.
func WithName(name string) Option { return func(c *Config) { c.Name = name } }

// WithLinger sets how long Serve answers after completion.
func WithLinger(d time.Duration) Option { return func(c *Config) { c.Linger = d } }

// WithDrainGrace sets how long Serve accepts completions after a drain.
func WithDrainGrace(d time.Duration) Option { return func(c *Config) { c.DrainGrace = d } }

// WithLogf installs a progress logger.
func WithLogf(f func(format string, args ...any)) Option { return func(c *Config) { c.Logf = f } }

func newConfig(opts []Option) Config {
	c := Config{
		LeaseTTL:       2 * time.Minute,
		Retry:          200 * time.Millisecond,
		MaxAttempts:    8,
		RequestTimeout: time.Minute,
		RunContext:     context.Background(),
		Name:           "worker",
		Linger:         time.Second,
	}
	for _, opt := range opts {
		opt(&c)
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Minute
	}
	if c.Retry <= 0 {
		c.Retry = 200 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = time.Minute
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 15 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Coordinator serves one Plan as a lease-based shard queue and collects
// the results — the queue and the collector are one state machine, because
// a completion is exactly a lease resolution. All methods are safe for
// concurrent use; it implements Queue directly, so in-process workers can
// skip the wire entirely.
type Coordinator struct {
	cfg    Config
	spec   wire.PlanSpec
	shards int
	sizes  []int

	mu        sync.Mutex
	pending   []int          // shard ids ready to lease, FIFO
	leases    map[string]int // outstanding leaseID → shard
	deadlines map[string]time.Time
	issued    map[string]int // every leaseID ever granted → shard
	done      []bool         // per shard
	results   map[int][]wire.Run
	remaining int // non-empty shards not yet completed
	seq       int
	draining  bool
	finished  chan struct{} // closed when remaining hits 0
}

// New builds a coordinator for an unsharded plan. The plan is carved into
// cfg.Shards strided slices; empty shards (more shards than cells) are
// never issued — the lease-aware iteration Plan.ShardSizes provides.
func New(plan *core.Plan, opts ...Option) (*Coordinator, error) {
	if plan.IsSharded() {
		return nil, errors.New("dispatch: coordinator needs the unsharded plan (shard coordinates travel in leases)")
	}
	cfg := newConfig(opts)
	n := cfg.Shards
	if n <= 0 {
		n = plan.Size()
		if n > 256 {
			n = 256
		}
	}
	if n < 1 {
		n = 1
	}
	c := &Coordinator{
		cfg:       cfg,
		spec:      wire.PlanSpecOf(plan),
		shards:    n,
		sizes:     plan.ShardSizes(n),
		leases:    make(map[string]int),
		deadlines: make(map[string]time.Time),
		issued:    make(map[string]int),
		done:      make([]bool, n),
		results:   make(map[int][]wire.Run),
		finished:  make(chan struct{}),
	}
	for shard, size := range c.sizes {
		if size == 0 {
			c.done[shard] = true
			continue
		}
		c.pending = append(c.pending, shard)
		c.remaining++
	}
	if c.remaining == 0 {
		close(c.finished)
	}
	return c, nil
}

// expire requeues every outstanding lease whose deadline has passed.
// Called with c.mu held. Expiry is lazy — checked on each Lease — which
// keeps the coordinator timer-free and deterministic under test.
func (c *Coordinator) expire(now time.Time) {
	for id, deadline := range c.deadlines {
		if now.Before(deadline) {
			continue
		}
		shard := c.leases[id]
		delete(c.leases, id)
		delete(c.deadlines, id)
		if !c.done[shard] {
			c.pending = append(c.pending, shard)
			c.cfg.Logf("dispatch: lease %s expired, requeueing shard %d/%d", id, shard, c.shards)
		}
	}
}

// Lease implements Queue: pop a pending shard, or tell the worker to wait
// (work is leased out but could still expire back) or stop (sweep done or
// draining). The error is always nil — it exists for the Queue interface,
// where transports can fail.
func (c *Coordinator) Lease(worker string) (wire.LeaseGrant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expire(time.Now())
	if c.draining || c.remaining == 0 {
		return wire.LeaseGrant{Version: wire.Version, Done: true}, nil
	}
	// Pop the first pending shard that is still open: a shard can sit in
	// pending and be done — its lease expired, it was requeued, and then
	// the presumed-dead worker's late completion landed — and re-leasing
	// it would re-run the whole slice for nothing.
	shard := -1
	for len(c.pending) > 0 {
		s := c.pending[0]
		c.pending = c.pending[1:]
		if !c.done[s] {
			shard = s
			break
		}
	}
	if shard < 0 {
		return wire.LeaseGrant{Version: wire.Version, Wait: true, RetryMillis: c.cfg.Retry.Milliseconds()}, nil
	}
	c.seq++
	id := fmt.Sprintf("lease-%d-shard-%d", c.seq, shard)
	c.leases[id] = shard
	c.deadlines[id] = time.Now().Add(c.cfg.LeaseTTL)
	c.issued[id] = shard
	c.cfg.Logf("dispatch: leased shard %d/%d (%d cells) to %s as %s", shard, c.shards, c.sizes[shard], worker, id)
	return wire.LeaseGrant{
		Version:   wire.Version,
		LeaseID:   id,
		Shard:     shard,
		Shards:    c.shards,
		Plan:      c.spec,
		TTLMillis: c.cfg.LeaseTTL.Milliseconds(),
	}, nil
}

// Complete implements Queue: resolve a lease with its shard's results.
// Completions are idempotent — a worker that lost its lease to expiry may
// still deliver, and whichever batch lands first wins; determinism makes
// every batch for one shard identical, so "first wins" is not a race on
// content. A batch is rejected (and the shard requeued) when it is short
// without carrying a cell error to explain it, or when any run's Index
// falls outside the shard — both are protocol violations, not transient
// failures.
func (c *Coordinator) Complete(leaseID string, runs []wire.Run) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	shard, ok := c.issued[leaseID]
	if !ok {
		return fmt.Errorf("dispatch: unknown lease %q", leaseID)
	}
	delete(c.leases, leaseID)
	delete(c.deadlines, leaseID)
	if c.done[shard] {
		return nil // late duplicate of an expired-and-reissued lease
	}
	failed := false
	for _, r := range runs {
		if r.Index%c.shards != shard {
			c.requeueLocked(shard)
			return fmt.Errorf("dispatch: lease %s delivered cell %d, which is not in shard %d/%d", leaseID, r.Index, shard, c.shards)
		}
		if r.Err != "" {
			failed = true
		}
	}
	if len(runs) != c.sizes[shard] && !failed {
		c.requeueLocked(shard)
		return fmt.Errorf("dispatch: lease %s delivered %d runs for shard %d/%d, want %d", leaseID, len(runs), shard, c.shards, c.sizes[shard])
	}
	c.done[shard] = true
	c.results[shard] = runs
	c.remaining--
	c.cfg.Logf("dispatch: shard %d/%d complete (%s), %d shards remaining", shard, c.shards, leaseID, c.remaining)
	if c.remaining == 0 {
		close(c.finished)
	}
	return nil
}

// requeueLocked puts a shard back at the head of the queue, unless it is
// already queued (two rejected batches for one shard must not double-lease
// it). Called with c.mu held.
func (c *Coordinator) requeueLocked(shard int) {
	for _, s := range c.pending {
		if s == shard {
			return
		}
	}
	c.pending = append([]int{shard}, c.pending...)
}

// Collected returns the merge of every batch received so far in canonical
// order — Wait's result shape, without waiting.
func (c *Coordinator) Collected() []wire.Run {
	c.mu.Lock()
	batches := make([][]wire.Run, 0, len(c.results))
	for _, b := range c.results {
		batches = append(batches, b)
	}
	c.mu.Unlock()
	return wire.Merge(batches...)
}

// Drain stops the coordinator from issuing further leases: every
// subsequent Lease answers Done, so pulling workers wind down after their
// current shard. Completions for already-issued leases are still accepted.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// Done reports whether every shard has completed.
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remaining == 0
}

// Counts reports the queue state: shards pending (leasable now), leased
// out, and completed.
func (c *Coordinator) Counts() (pending, leased, done int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expire(time.Now())
	for _, d := range c.done {
		if d {
			done++
		}
	}
	return len(c.pending), len(c.leases), done
}

// Wait blocks until every shard has completed or ctx is cancelled (which
// drains the queue, so workers stop pulling), then returns the collected
// results merged into the canonical unsharded order. The error is ctx's
// on cancellation, else the first cell error in canonical order, else nil
// — mirroring Runner.Run, so "distributed" and "in-process" report
// failures the same way.
func (c *Coordinator) Wait(ctx context.Context) ([]wire.Run, error) {
	select {
	case <-c.finished:
	case <-ctx.Done():
		c.Drain()
	}
	merged := c.Collected()
	if err := ctx.Err(); err != nil {
		return merged, err
	}
	for _, r := range merged {
		if r.Err != "" {
			return merged, fmt.Errorf("dispatch: cell %d (set %d/%s): %s", r.Index, r.Set, r.Class, r.Err)
		}
	}
	return merged, nil
}
