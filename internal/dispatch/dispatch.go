// Package dispatch turns a Plan into a pull-based work queue: a
// coordinator leases shards to workers over HTTP (or an in-process
// loopback), collects each shard's wire-encoded results, and merges them
// back into the canonical unsharded order.
//
// PR 3's Plan.Shard gave sweeps static fan-out: n processes, each told its
// (i, n) up front. That shape wastes hardware the moment machines differ —
// the fastest worker idles while the slowest grinds — and loses a shard
// outright when a worker dies. The dispatcher inverts it: the coordinator
// holds the one unsharded Plan, carves it into many more shards than
// workers, and workers *pull*. Each lease grants one strided shard plus
// the full PlanSpec; the worker reconstructs the plan locally, runs its
// slice under StreamProfiles retention (O(analyzer-state) memory, no
// traces), and ships the wire.Run batch home. Leases expire: a worker that
// dies mid-shard simply stops renewing its claim, and the coordinator
// re-issues the shard to the next puller. Because every cell's seed and
// Index come from the Plan — not from which worker ran it or when — the
// merged output is byte-identical to a single-process Runner.Run, no
// matter how leases interleave, expire or duplicate.
//
// The pieces compose at three levels: Coordinator/Worker as library types
// (any Queue transport), Handler/Client as the HTTP wire (gob envelopes
// from internal/wire, versioned), and Serve/Work as the one-call entry
// points cmd/turbulence exposes as -serve and -work. Loopback binds a
// Client directly to a Coordinator's handler for tests and single-process
// demos — the full wire path, no sockets.
package dispatch

import (
	"context"
	cryptorand "crypto/rand"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"turbulence/internal/core"
	"turbulence/internal/obs"
	"turbulence/internal/resultstore"
	"turbulence/internal/wire"
)

// Queue is the coordinator API a worker pulls from: the Coordinator
// itself, or a Client speaking the HTTP wire to a remote one.
type Queue interface {
	// Lease asks for a shard. The grant is exactly one of: work (LeaseID
	// set), a wait hint (Wait set), or the drain signal (Done set).
	Lease(worker string) (wire.LeaseGrant, error)
	// Renew extends a lease the worker is still executing. ErrLeaseLost
	// (possibly wrapped) means the claim is gone — expired, resolved by
	// another worker, or from a dead coordinator epoch — and the worker
	// must abort the shard rather than ship a late duplicate.
	Renew(leaseID, worker string) error
	// Complete delivers a leased shard's results.
	Complete(leaseID string, runs []wire.Run) error
}

// ErrLeaseLost is the renewal rejection: the lease no longer exists on
// the coordinator. The holder's shard is orphaned — some other worker
// owns it now (or already finished it) — so the only correct move is to
// abort it and pull a fresh lease.
var ErrLeaseLost = errors.New("dispatch: lease lost")

// Config collects the dispatcher knobs; Options adjust it. One Config type
// serves Coordinator, Worker and Client — each reads the fields that
// concern it.
type Config struct {
	// Shards is the lease granularity: how many strided slices the plan is
	// carved into. More shards than workers is the point — it is what lets
	// fast machines pull more than their share. 0 means one shard per cell,
	// capped at 256.
	Shards int
	// LeaseTTL is how long a shard stays claimed with no Complete before
	// the coordinator assumes the worker died and re-issues it. It bounds
	// how long a dead worker can stall a sweep, so it must comfortably
	// exceed one shard's runtime. Default 2m.
	LeaseTTL time.Duration
	// Retry is the worker's poll interval while the queue has nothing
	// leasable, and the client's backoff base for transport errors.
	// Default 200ms.
	Retry time.Duration
	// MaxAttempts bounds consecutive transport failures before a Client
	// call gives up. Default 8.
	MaxAttempts int
	// MaxElapsed is the client's retry budget: one call never spends
	// longer than this across all attempts and backoff sleeps, however
	// many attempts remain. It is what keeps a worker facing a flapping
	// coordinator from hanging -work forever. Default 2m.
	MaxElapsed time.Duration
	// Heartbeat is the worker's lease-renewal interval while a shard is
	// simulating. 0 derives it from the granted TTL (TTL/3), which is the
	// right default: three missed beats before the claim lapses.
	Heartbeat time.Duration
	// Checkpoint is the coordinator's journal path. Empty disables
	// checkpointing; otherwise every completed shard is appended (gob
	// frames, fsync'd) and a coordinator restarted on the same path —
	// or via Resume — replays it and re-leases only the unfinished
	// shards.
	Checkpoint string
	// MaxShardFailures quarantines a shard after this many strikes
	// (lease expiries, rejected or malformed batches): the shard is
	// parked — reported in /status, no longer leased — instead of
	// poisoning the queue forever. The sweep then finishes with an error
	// naming the parked shards. Default 5; negative disables quarantine.
	MaxShardFailures int
	// MaxBodyBytes caps a request body on the coordinator's HTTP
	// handlers; oversized bodies are rejected 413 before they can balloon
	// memory. Default 64 MiB (profiles are a few KB per cell).
	MaxBodyBytes int64
	// Transport overrides the client's HTTP transport. Tests wrap the
	// default in a fault-injecting chaos transport here.
	Transport http.RoundTripper
	// RequestTimeout bounds one HTTP round trip on the Client, so a
	// partitioned coordinator (connected but blackholed) turns into a
	// retriable error instead of a worker hung past every ctrl-C. Bodies
	// are profiles, a few KB per cell, so the default 60s is generous.
	RequestTimeout time.Duration
	// RunWorkers is the worker's Runner pool size per shard (0 = all
	// cores).
	RunWorkers int
	// RunContext hard-cancels in-flight simulation on a worker (the
	// second ctrl-C). The context passed to Worker.Run only drains — the
	// current shard still finishes and ships. Default: never.
	RunContext context.Context
	// Name identifies the worker in coordinator logs and status.
	Name string
	// Linger is how long Serve keeps answering after the sweep completes,
	// so workers sleeping through a wait hint observe Done instead of a
	// dead socket. Default 1s.
	Linger time.Duration
	// DrainGrace is how long Serve keeps accepting completions after a
	// cancellation drain, so workers finishing their current shard (the
	// graceful half of their own ctrl-C handling) can still land it
	// before the socket dies. Default 15s.
	DrainGrace time.Duration
	// Pprof mounts net/http/pprof on the coordinator's mux (under
	// /debug/pprof/). Off by default: profiles expose goroutine stacks
	// and heap contents, so enable it only on an address you'd let an
	// operator shell into.
	Pprof bool
	// EventRing is the capacity of the shard-lifecycle event ring behind
	// GET /events. Default 1024 — at five or so transitions per shard,
	// enough to hold a mid-sized sweep's full history.
	EventRing int
	// Store is the content-addressed result store (nil = off). On the
	// coordinator it is consulted at plan-carve time — fully-cached shards
	// are journalled done and never leased; partially-cached shards ship
	// their hit indexes in the LeaseGrant — and newly delivered results
	// are inserted for the next sweep. On a worker it is the Runner's
	// read-through cache for loopback/local runs.
	Store *resultstore.Store
	// AdaptiveLeases sizes leases from observed per-worker throughput
	// instead of granting whole static shards: a popped shard is
	// subdivided (by stride, so cell Index and seed never move) until its
	// cell count fits LeaseTarget at the puller's measured pace, and
	// quarantine-prone shards subdivide further so a strike costs less
	// re-work. Off by default — with it off the carve is exactly the
	// static Shards count.
	AdaptiveLeases bool
	// LeaseTarget is the wall-clock an adaptively sized lease should take
	// at the pulling worker's measured throughput. Workers with no
	// measurement yet (their first pull) get the whole shard. Default
	// LeaseTTL/4, so even a mis-sized lease renews comfortably.
	LeaseTarget time.Duration
	// Logf receives progress lines (default: none).
	Logf func(format string, args ...any)
}

// Option adjusts a Config.
type Option func(*Config)

// WithShards sets the lease granularity (see Config.Shards).
func WithShards(n int) Option { return func(c *Config) { c.Shards = n } }

// WithLeaseTTL sets the lease expiry (see Config.LeaseTTL).
func WithLeaseTTL(d time.Duration) Option { return func(c *Config) { c.LeaseTTL = d } }

// WithRetry sets the poll/backoff base interval.
func WithRetry(d time.Duration) Option { return func(c *Config) { c.Retry = d } }

// WithMaxAttempts bounds consecutive transport failures per client call.
func WithMaxAttempts(n int) Option { return func(c *Config) { c.MaxAttempts = n } }

// WithRetryBudget caps one client call's total elapsed retrying.
func WithRetryBudget(d time.Duration) Option { return func(c *Config) { c.MaxElapsed = d } }

// WithHeartbeat sets the worker's lease-renewal interval (0 = TTL/3).
func WithHeartbeat(d time.Duration) Option { return func(c *Config) { c.Heartbeat = d } }

// WithCheckpoint sets the coordinator's journal path (see Config.Checkpoint).
func WithCheckpoint(path string) Option { return func(c *Config) { c.Checkpoint = path } }

// WithMaxShardFailures sets the quarantine threshold (negative disables).
func WithMaxShardFailures(n int) Option { return func(c *Config) { c.MaxShardFailures = n } }

// WithMaxBodyBytes caps request bodies on the coordinator's handlers.
func WithMaxBodyBytes(n int64) Option { return func(c *Config) { c.MaxBodyBytes = n } }

// WithTransport overrides the client's HTTP transport (chaos tests).
func WithTransport(rt http.RoundTripper) Option { return func(c *Config) { c.Transport = rt } }

// WithRequestTimeout bounds one client HTTP round trip.
func WithRequestTimeout(d time.Duration) Option { return func(c *Config) { c.RequestTimeout = d } }

// WithRunWorkers sets the per-shard Runner pool size (0 = all cores).
func WithRunWorkers(n int) Option { return func(c *Config) { c.RunWorkers = n } }

// WithRunContext installs the hard-cancel context for in-flight simulation.
func WithRunContext(ctx context.Context) Option { return func(c *Config) { c.RunContext = ctx } }

// WithName sets the worker identity used in logs and status.
func WithName(name string) Option { return func(c *Config) { c.Name = name } }

// WithLinger sets how long Serve answers after completion.
func WithLinger(d time.Duration) Option { return func(c *Config) { c.Linger = d } }

// WithDrainGrace sets how long Serve accepts completions after a drain.
func WithDrainGrace(d time.Duration) Option { return func(c *Config) { c.DrainGrace = d } }

// WithPprof mounts net/http/pprof on the coordinator's mux (see
// Config.Pprof for the exposure caveat).
func WithPprof(on bool) Option { return func(c *Config) { c.Pprof = on } }

// WithEventRing sets the lifecycle event ring's capacity.
func WithEventRing(n int) Option { return func(c *Config) { c.EventRing = n } }

// WithLogf installs a progress logger.
func WithLogf(f func(format string, args ...any)) Option { return func(c *Config) { c.Logf = f } }

// WithResultStore installs the content-addressed result store (see
// Config.Store).
func WithResultStore(s *resultstore.Store) Option { return func(c *Config) { c.Store = s } }

// WithAdaptiveLeases toggles throughput-driven lease sizing (see
// Config.AdaptiveLeases).
func WithAdaptiveLeases(on bool) Option { return func(c *Config) { c.AdaptiveLeases = on } }

// WithLeaseTarget sets the wall-clock an adaptive lease aims for (see
// Config.LeaseTarget).
func WithLeaseTarget(d time.Duration) Option { return func(c *Config) { c.LeaseTarget = d } }

func newConfig(opts []Option) Config {
	c := Config{
		LeaseTTL:         2 * time.Minute,
		Retry:            200 * time.Millisecond,
		MaxAttempts:      8,
		MaxElapsed:       2 * time.Minute,
		RequestTimeout:   time.Minute,
		RunContext:       context.Background(),
		Name:             "worker",
		Linger:           time.Second,
		MaxShardFailures: 5,
		MaxBodyBytes:     64 << 20,
	}
	for _, opt := range opts {
		opt(&c)
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Minute
	}
	if c.Retry <= 0 {
		c.Retry = 200 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.MaxElapsed <= 0 {
		c.MaxElapsed = 2 * time.Minute
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = time.Minute
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 15 * time.Second
	}
	if c.MaxShardFailures == 0 {
		c.MaxShardFailures = 5
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.EventRing <= 0 {
		c.EventRing = 1024
	}
	if c.LeaseTarget <= 0 {
		c.LeaseTarget = c.LeaseTTL / 4
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Coordinator serves one Plan as a lease-based shard queue and collects
// the results — the queue and the collector are one state machine, because
// a completion is exactly a lease resolution. All methods are safe for
// concurrent use; it implements Queue directly, so in-process workers can
// skip the wire entirely.
type Coordinator struct {
	cfg      Config
	spec     wire.PlanSpec
	shards   int
	planSize int
	sizes    []int
	epoch    string // random per-instance tag baked into lease IDs

	// cellDigests holds every cell's content address in canonical Index
	// order; nil when no result store is configured. Computed once at
	// carve time and read-only after, so the commit path can address
	// inserts without holding c.mu.
	cellDigests []string

	mu          sync.Mutex
	pending     []slab          // lease slices ready to grant, FIFO
	leases      map[string]slab // outstanding leaseID → slice
	deadlines   map[string]time.Time
	issued      map[string]slab   // every leaseID ever granted → slice
	holders     map[string]string // every leaseID ever granted → worker name
	rejected    map[string]bool   // leases already struck for a bad delivery
	done        []bool            // per shard
	strikes     []int             // per shard: expiries + rejected batches
	lastStrike  []string          // per shard: most recent strike reason
	quarantined []bool            // per shard: parked after MaxShardFailures
	committing  []bool            // per shard: journal append in flight
	commitDone  *sync.Cond        // on mu; broadcast when a commit settles
	results     map[int][]wire.Run
	cachedRuns  map[int][]wire.Run       // per shard: store hits, canonical order
	cachedIdx   map[int]map[int]bool     // per shard: store-hit global Indexes
	gathered    map[int]map[int]wire.Run // per shard: delivered cells by global Index
	open        map[int][]slab           // per shard: slices not yet resolved
	remaining   int                      // non-empty shards neither completed nor quarantined
	delivering  int                      // live leases removed by an in-flight Complete, not yet classified
	seq         int
	draining    bool
	finished    chan struct{} // closed when remaining hits 0
	journal     *journal      // nil when checkpointing is off
	m           *coordMetrics
}

// slab is one leasable slice of a shard, in stride coordinates relative to
// the base carve: subs=1 (sub=0) is the whole shard — the only shape that
// exists with adaptive leasing off — and splitting doubles subs, giving
// the two strided halves (sub, 2·subs) and (sub+subs, 2·subs). The slab's
// cells on the wire are Plan.Shard(shard + sub·shards, subs·shards): the
// same strided-slice contract workers already execute, so subdivision
// needs no new protocol shape and every cell keeps its global Index and
// seed. Per-shard bookkeeping (strikes, quarantine, journal frames,
// results) stays at the base-shard grain; slabs only change how much of a
// shard one lease carries.
type slab struct {
	shard     int // base shard, 0..shards-1
	sub, subs int // stride slice within the shard; subs >= 1
}

// wireCoords are the slab's Shard/Shards as granted to a worker.
func (s slab) wireCoords(shards int) (int, int) {
	return s.shard + s.sub*shards, s.subs * shards
}

// sliceSize is the slab's cell count in a plan of planSize cells.
func (c *Coordinator) sliceSize(s slab) int {
	i, n := s.wireCoords(c.shards)
	if i >= c.planSize {
		return 0
	}
	return (c.planSize - i + n - 1) / n
}

// cachedInSlice lists the slab's store-hit global Indexes, ascending.
func (c *Coordinator) cachedInSlice(s slab) []int {
	m := c.cachedIdx[s.shard]
	if len(m) == 0 {
		return nil
	}
	i, n := s.wireCoords(c.shards)
	var out []int
	for idx := i; idx < c.planSize; idx += n {
		if m[idx] {
			out = append(out, idx)
		}
	}
	return out
}

// effectiveSize is how many cells a lease on the slab actually simulates:
// its stride minus the store hits the grant tells the worker to skip.
func (c *Coordinator) effectiveSize(s slab) int {
	return c.sliceSize(s) - len(c.cachedInSlice(s))
}

// sliceOpen reports whether the slab is still awaiting resolution. A slab
// can sit in pending and be closed — it expired, was requeued, split on
// re-grant, or its cells arrived in a late parent delivery — and granting
// it again would re-run covered work. Called with c.mu held.
func (c *Coordinator) sliceOpen(s slab) bool {
	for _, o := range c.open[s.shard] {
		if o == s {
			return true
		}
	}
	return false
}

// resolveSliceLocked removes the slab from its shard's open set. Called
// with c.mu held.
func (c *Coordinator) resolveSliceLocked(s slab) {
	live := c.open[s.shard][:0]
	for _, o := range c.open[s.shard] {
		if o != s {
			live = append(live, o)
		}
	}
	c.open[s.shard] = live
}

// sweepOpenLocked resolves every remaining open slab of the shard whose
// cells are all covered by store hits plus gathered deliveries — which is
// how a late whole-parent delivery (the lease expired, the slab was
// requeued and split, then the presumed-dead worker shipped after all)
// retires the child slabs its batch subsumed. Called with c.mu held.
func (c *Coordinator) sweepOpenLocked(shard int) {
	live := c.open[shard][:0]
	for _, o := range c.open[shard] {
		if c.sliceCoveredLocked(o) {
			continue
		}
		live = append(live, o)
	}
	c.open[shard] = live
}

// sliceCoveredLocked reports whether every cell of the slab is accounted
// for (cached or delivered). Called with c.mu held.
func (c *Coordinator) sliceCoveredLocked(s slab) bool {
	i, n := s.wireCoords(c.shards)
	cached, got := c.cachedIdx[s.shard], c.gathered[s.shard]
	for idx := i; idx < c.planSize; idx += n {
		if !cached[idx] {
			if _, ok := got[idx]; !ok {
				return false
			}
		}
	}
	return true
}

// newEpoch draws the coordinator instance's random lease-ID tag. Lease
// IDs must never collide across coordinator lifetimes: a sequence number
// alone resets on restart, so a resumed coordinator could re-issue an ID
// a pre-crash worker still holds — and that worker's stale completion
// would then be indistinguishable from the new holder's.
func newEpoch() (string, error) {
	var b [4]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "", fmt.Errorf("dispatch: cannot draw lease epoch: %w", err)
	}
	return fmt.Sprintf("%x", b), nil
}

// New builds a coordinator for an unsharded plan. The plan is carved into
// cfg.Shards strided slices; empty shards (more shards than cells) are
// never issued — the lease-aware iteration Plan.ShardSizes provides.
//
// With WithCheckpoint, completions are journalled to the named file; if
// the file already holds a checkpoint for this exact plan (same
// wire.PlanSpec digest), it is replayed and only the unfinished shards
// are leased out — New on an existing checkpoint IS the resume path. A
// journal for a different plan is refused rather than mixed in.
func New(plan *core.Plan, opts ...Option) (*Coordinator, error) {
	if plan.IsSharded() {
		return nil, errors.New("dispatch: coordinator needs the unsharded plan (shard coordinates travel in leases)")
	}
	cfg := newConfig(opts)
	spec := wire.PlanSpecOf(plan)

	// An existing journal fixes the shard carve: completion frames index
	// into it, so a resumed -serve-shards disagreement must not reshuffle
	// which cells "shard 3" means.
	var header *journalHeader
	var replayed []journalComplete
	var journalEnd int64 // offset past the last whole frame (tear cut point)
	if cfg.Checkpoint != "" {
		if st, err := os.Stat(cfg.Checkpoint); err == nil && st.Size() > 0 {
			h, done, end, err := readJournal(cfg.Checkpoint)
			if err != nil {
				return nil, err
			}
			journalEnd = end
			if h.Digest != spec.Digest() {
				return nil, fmt.Errorf("dispatch: checkpoint %s belongs to a different sweep (plan digest %.12s, this plan %.12s) — refusing to mix", cfg.Checkpoint, h.Digest, spec.Digest())
			}
			header, replayed = h, done
		}
	}

	n := cfg.Shards
	if header != nil {
		if n > 0 && n != header.Shards {
			cfg.Logf("dispatch: checkpoint %s was carved into %d shards; overriding the requested %d", cfg.Checkpoint, header.Shards, n)
		}
		n = header.Shards
	}
	if n <= 0 {
		n = plan.Size()
		if n > 256 {
			n = 256
		}
	}
	if n < 1 {
		n = 1
	}
	epoch, err := newEpoch()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:         cfg,
		spec:        spec,
		shards:      n,
		planSize:    plan.Size(),
		sizes:       plan.ShardSizes(n),
		epoch:       epoch,
		leases:      make(map[string]slab),
		deadlines:   make(map[string]time.Time),
		issued:      make(map[string]slab),
		holders:     make(map[string]string),
		rejected:    make(map[string]bool),
		done:        make([]bool, n),
		strikes:     make([]int, n),
		lastStrike:  make([]string, n),
		quarantined: make([]bool, n),
		committing:  make([]bool, n),
		results:     make(map[int][]wire.Run),
		cachedRuns:  make(map[int][]wire.Run),
		cachedIdx:   make(map[int]map[int]bool),
		gathered:    make(map[int]map[int]wire.Run),
		open:        make(map[int][]slab),
		finished:    make(chan struct{}),
	}
	c.commitDone = sync.NewCond(&c.mu)
	c.m = newCoordMetrics(c, cfg.EventRing)
	if cfg.Store != nil {
		cfg.Store.Register(c.m.reg)
	}
	for shard, size := range c.sizes {
		if size == 0 {
			c.done[shard] = true
			continue
		}
		c.pending = append(c.pending, slab{shard: shard, subs: 1})
		c.open[shard] = []slab{{shard: shard, subs: 1}}
		c.remaining++
	}
	for _, rec := range replayed {
		if rec.Shard < 0 || rec.Shard >= n {
			return nil, fmt.Errorf("dispatch: checkpoint %s records shard %d of %d — corrupt", cfg.Checkpoint, rec.Shard, n)
		}
		if c.done[rec.Shard] {
			continue // duplicate frame; harmless, first wins
		}
		if err := c.validateBatch(rec.Shard, rec.Runs); err != nil {
			return nil, fmt.Errorf("dispatch: checkpoint %s: %w", cfg.Checkpoint, err)
		}
		c.done[rec.Shard] = true
		c.results[rec.Shard] = rec.Runs
		delete(c.open, rec.Shard)
		c.remaining--
	}
	if len(replayed) > 0 {
		// Drop replayed shards from pending.
		open := c.pending[:0]
		for _, s := range c.pending {
			if !c.done[s.shard] {
				open = append(open, s)
			}
		}
		c.pending = open
		cfg.Logf("dispatch: resumed from %s: %d/%d shards already collected, %d to go", cfg.Checkpoint, n-c.remaining, n, c.remaining)
	}
	if cfg.Checkpoint != "" {
		j, err := openJournal(cfg.Checkpoint, journalHeader{
			Magic:   journalMagic,
			Version: wire.Version,
			Digest:  spec.Digest(),
			Spec:    spec,
			Shards:  n,
		}, header == nil, journalEnd, cfg.Logf)
		if err != nil {
			return nil, err
		}
		j.fsyncs = c.m.journalFsyncs
		j.fsyncSeconds = c.m.journalFsyncSeconds
		c.journal = j
	}
	c.consultStore(plan)
	if c.remaining == 0 {
		close(c.finished)
	}
	return c, nil
}

// consultStore probes the result store for every cell of every unfinished
// shard, once, at carve time. A fully-cached shard is journalled and
// marked done — it is never leased, which is what makes a warm rerun of an
// identical plan simulate zero cells. A partially-cached shard keeps its
// hits aside: grants ship the hit Indexes as CachedCells, workers omit
// them, and the commit path merges the hits back in canonical order.
// Called from New before any concurrency; takes c.mu only for the
// journal-append discipline's sake.
func (c *Coordinator) consultStore(plan *core.Plan) {
	st := c.cfg.Store
	if st == nil {
		return
	}
	keys := plan.Keys()
	c.cellDigests = make([]string, len(keys))
	for i, k := range keys {
		c.cellDigests[i] = wire.CellSpecFrom(k.Pair, plan.OptionsFor(k), plan.Seed(k)).Digest()
	}
	cells, full := 0, 0
	for shard := 0; shard < c.shards; shard++ {
		if c.done[shard] {
			continue
		}
		var hits []wire.Run
		var idxs map[int]bool
		for idx := shard; idx < c.planSize; idx += c.shards {
			cmp, ok := st.Lookup(c.cellDigests[idx])
			if !ok {
				continue
			}
			if idxs == nil {
				idxs = make(map[int]bool)
			}
			idxs[idx] = true
			hits = append(hits, wire.RunFromCached(keys[idx], plan.Seed(keys[idx]), cmp))
		}
		if idxs == nil {
			continue
		}
		cells += len(hits)
		if len(hits) == c.sizes[shard] {
			// Fully cached: record it exactly as a completion would, so a
			// resumed coordinator replays it without needing the store.
			c.journal.appendFrame(journalFrame{Complete: &journalComplete{Shard: shard, Runs: hits}})
			c.done[shard] = true
			c.results[shard] = hits
			delete(c.open, shard)
			c.remaining--
			full++
			c.m.event("complete", shard, "", "", "served from result store")
			continue
		}
		c.cachedIdx[shard] = idxs
		c.cachedRuns[shard] = hits
	}
	if cells > 0 {
		if full > 0 {
			open := c.pending[:0]
			for _, s := range c.pending {
				if !c.done[s.shard] {
					open = append(open, s)
				}
			}
			c.pending = open
		}
		c.cfg.Logf("dispatch: result store holds %d of this sweep's cells (%d shards fully cached, never leased); %d shards to go", cells, full, c.remaining)
	}
}

// Resume rebuilds a coordinator entirely from a checkpoint file: the plan
// comes out of the journal's own PlanSpec, recorded completions are
// replayed, and only the unfinished shards will be leased. It is New with
// the journal as the source of truth — for the common restart where the
// operator has the checkpoint path and nothing else.
func Resume(path string, opts ...Option) (*Coordinator, error) {
	h, _, _, err := readJournal(path)
	if err != nil {
		return nil, err
	}
	plan, err := h.Spec.Plan()
	if err != nil {
		return nil, fmt.Errorf("dispatch: checkpoint %s: %w", path, err)
	}
	return New(plan, append(opts, WithCheckpoint(path))...)
}

// validateBatch applies the collector's protocol checks to a whole-shard
// batch: every cell inside the shard's stride, and no unexplained short
// count. Used for journal replay, where frames are always whole shards.
// Called with c.mu held (or during construction, before concurrency).
func (c *Coordinator) validateBatch(shard int, runs []wire.Run) error {
	failed := false
	for _, r := range runs {
		if r.Index%c.shards != shard {
			return fmt.Errorf("dispatch: batch delivered cell %d, which is not in shard %d/%d", r.Index, shard, c.shards)
		}
		if r.Err != "" {
			failed = true
		}
	}
	if len(runs) != c.sizes[shard] && !failed {
		return fmt.Errorf("dispatch: batch delivered %d runs for shard %d/%d, want %d", len(runs), shard, c.shards, c.sizes[shard])
	}
	return nil
}

// validateSlice is validateBatch for one leased slab: every delivered cell
// must lie on the slab's stride within the plan, no cell may appear twice,
// and the count of non-cached cells must equal the slab's effective size
// unless some run carries a cell error to explain the shortfall. Workers
// are allowed to ship cells the grant marked cached (an old worker that
// ignores CachedCells simply recomputes them) — those are tolerated and
// not counted against the expected size. Called with c.mu held.
func (c *Coordinator) validateSlice(s slab, runs []wire.Run) error {
	i, n := s.wireCoords(c.shards)
	cached := c.cachedIdx[s.shard]
	seen := make(map[int]bool, len(runs))
	failed := false
	fresh := 0
	for _, r := range runs {
		if r.Index < 0 || r.Index >= c.planSize || (r.Index-i)%n != 0 || r.Index < i {
			return fmt.Errorf("dispatch: batch delivered cell %d, which is not in slice %d/%d", r.Index, i, n)
		}
		if seen[r.Index] {
			return fmt.Errorf("dispatch: batch delivered cell %d twice", r.Index)
		}
		seen[r.Index] = true
		if r.Err != "" {
			failed = true
		}
		if !cached[r.Index] {
			fresh++
		}
	}
	if want := c.effectiveSize(s); fresh != want && !failed {
		return fmt.Errorf("dispatch: batch delivered %d runs for slice %d/%d, want %d", fresh, i, n, want)
	}
	return nil
}

// expire requeues every outstanding lease whose deadline has passed.
// Called with c.mu held. Expiry is lazy — checked on each Lease — which
// keeps the coordinator timer-free and deterministic under test. An
// expiry is a strike against the shard: a worker renewing its lease
// never expires, so lapsing means the holder died (or was partitioned
// past the TTL), and a shard that keeps killing its holders is
// eventually quarantined rather than re-leased forever.
func (c *Coordinator) expire(now time.Time) {
	for id, deadline := range c.deadlines {
		if now.Before(deadline) {
			continue
		}
		s := c.leases[id]
		shard := s.shard
		delete(c.leases, id)
		delete(c.deadlines, id)
		c.m.expired.Inc()
		c.m.event("expire", shard, id, c.holders[id], "")
		if !c.done[shard] && !c.quarantined[shard] && c.sliceOpen(s) {
			c.pending = append(c.pending, s)
			c.cfg.Logf("dispatch: lease %s expired, requeueing shard %d/%d", id, shard, c.shards)
			c.strikeLocked(shard, "lease expired")
		}
	}
}

// strikeLocked charges one failure against a shard and parks it once it
// reaches the quarantine threshold: off the queue, reported in /status,
// no longer counted against completion — so one poisoned shard cannot
// wedge the whole sweep. Called with c.mu held.
func (c *Coordinator) strikeLocked(shard int, reason string) {
	c.strikes[shard]++
	c.lastStrike[shard] = reason
	c.m.strikes.Inc()
	max := c.cfg.MaxShardFailures
	if max < 0 || c.strikes[shard] < max || c.done[shard] || c.quarantined[shard] {
		return
	}
	c.quarantined[shard] = true
	c.m.quarantines.Inc()
	c.m.event("quarantine", shard, "", "", reason)
	open := c.pending[:0]
	for _, s := range c.pending {
		if s.shard != shard {
			open = append(open, s)
		}
	}
	c.pending = open
	c.remaining--
	c.cfg.Logf("dispatch: shard %d/%d quarantined after %d failures — parked, see /status", shard, c.shards, c.strikes[shard])
	if c.remaining == 0 {
		close(c.finished)
	}
}

// Lease implements Queue: pop a pending shard, or tell the worker to wait
// (work is leased out but could still expire back) or stop (sweep done or
// draining). The error is always nil — it exists for the Queue interface,
// where transports can fail.
func (c *Coordinator) Lease(worker string) (wire.LeaseGrant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expire(time.Now())
	if c.draining || c.remaining == 0 {
		return wire.LeaseGrant{Version: wire.Version, Done: true}, nil
	}
	// Pop the first pending slab that is still open: a slab can sit in
	// pending and be resolved — its lease expired, it was requeued, and
	// then the presumed-dead worker's late completion landed (possibly as
	// part of a whole-parent batch that covered it) — and re-leasing it
	// would re-run the whole slice for nothing.
	var s slab
	found := false
	for len(c.pending) > 0 {
		cand := c.pending[0]
		c.pending = c.pending[1:]
		if !c.done[cand.shard] && !c.quarantined[cand.shard] && c.sliceOpen(cand) {
			s = cand
			found = true
			break
		}
	}
	if !found {
		return wire.LeaseGrant{Version: wire.Version, Wait: true, RetryMillis: c.cfg.Retry.Milliseconds()}, nil
	}
	if c.cfg.AdaptiveLeases {
		s = c.splitForWorkerLocked(s, worker)
	}
	i, n := s.wireCoords(c.shards)
	c.seq++
	id := fmt.Sprintf("lease-%s-%d-shard-%d", c.epoch, c.seq, s.shard)
	c.leases[id] = s
	c.deadlines[id] = time.Now().Add(c.cfg.LeaseTTL)
	c.issued[id] = s
	c.holders[id] = worker
	c.m.granted.Inc()
	c.m.event("lease", s.shard, id, worker, "")
	if c.cfg.AdaptiveLeases {
		c.m.adaptiveLeaseCells.Observe(float64(c.effectiveSize(s)))
	}
	c.cfg.Logf("dispatch: leased slice %d/%d (%d cells) to %s as %s", i, n, c.effectiveSize(s), worker, id)
	return wire.LeaseGrant{
		Version:     wire.Version,
		LeaseID:     id,
		Shard:       i,
		Shards:      n,
		Plan:        c.spec,
		TTLMillis:   c.cfg.LeaseTTL.Milliseconds(),
		CachedCells: c.cachedInSlice(s),
	}, nil
}

// splitForWorkerLocked shrinks a popped slab until its effective cell
// count fits what the pulling worker can simulate inside LeaseTarget at
// its measured throughput. A worker with no measurement yet (first pull)
// takes the slab whole; a shard with strikes subdivides regardless, so a
// repeat failure forfeits half as much work. Splitting is by stride —
// slab (sub, subs) becomes (sub, 2·subs) and (sub+subs, 2·subs) — so cell
// Indexes and seeds never move; the far half goes to the head of the
// queue for the next puller. Called with c.mu held.
func (c *Coordinator) splitForWorkerLocked(s slab, worker string) slab {
	target := c.m.workerThroughput.With(worker).Value() * c.cfg.LeaseTarget.Seconds()
	if c.strikes[s.shard] > 0 {
		if half := float64(c.effectiveSize(s)) / 2; target <= 0 || target > half {
			target = half
		}
	}
	if target <= 0 {
		return s
	}
	for float64(c.effectiveSize(s)) > target && c.sliceSize(s) > 1 {
		a := slab{shard: s.shard, sub: s.sub, subs: s.subs * 2}
		b := slab{shard: s.shard, sub: s.sub + s.subs, subs: s.subs * 2}
		c.resolveSliceLocked(s)
		c.open[s.shard] = append(c.open[s.shard], a, b)
		c.pending = append([]slab{b}, c.pending...)
		s = a
	}
	return s
}

// Renew implements Queue: push an outstanding lease's deadline out one
// TTL, so a shard that legitimately outlives the lease is never
// double-run while its worker still heartbeats. A lease that is gone —
// expired and reissued, resolved, from a previous coordinator epoch, or
// simply unknown — answers ErrLeaseLost: the worker's shard is orphaned
// and must be aborted, not shipped.
func (c *Coordinator) Renew(leaseID, worker string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expire(time.Now())
	s, ok := c.leases[leaseID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrLeaseLost, leaseID)
	}
	shard := s.shard
	if c.done[shard] || c.quarantined[shard] || !c.sliceOpen(s) {
		// Someone else's batch already resolved the slice (or its shard
		// was parked); renewing would only extend pointless work.
		delete(c.leases, leaseID)
		delete(c.deadlines, leaseID)
		c.m.lost.Inc()
		c.m.event("lost", shard, leaseID, worker, "shard already resolved")
		return fmt.Errorf("%w: shard %d already resolved", ErrLeaseLost, shard)
	}
	c.deadlines[leaseID] = time.Now().Add(c.cfg.LeaseTTL)
	c.m.renewed.Inc()
	c.m.event("renew", shard, leaseID, worker, "")
	return nil
}

// Reject resolves a lease whose delivery could not even be decoded (a
// malformed or truncated /complete body): the lease is released, the
// shard requeued with a strike, and the worker may retry the same lease
// with an intact body — the lease stays in issued, so a later good batch
// still lands. One strike per lease: a duplicated delivery of the same
// undecodable body (the chaos transport injects exactly this) must not
// charge the shard twice for one failure and hurry it into quarantine.
func (c *Coordinator) Reject(leaseID string, reason error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.issued[leaseID]
	if !ok {
		return fmt.Errorf("dispatch: unknown lease %q", leaseID)
	}
	shard := s.shard
	if _, live := c.leases[leaseID]; live {
		c.m.rejected.Inc()
	}
	delete(c.leases, leaseID)
	delete(c.deadlines, leaseID)
	if c.rejected[leaseID] {
		return nil
	}
	c.rejected[leaseID] = true
	c.m.event("reject", shard, leaseID, c.holders[leaseID], reason.Error())
	if c.done[shard] || c.quarantined[shard] || !c.sliceOpen(s) {
		return nil
	}
	c.cfg.Logf("dispatch: lease %s delivery rejected (%v), requeueing shard %d/%d", leaseID, reason, shard, c.shards)
	c.requeueLocked(s)
	c.strikeLocked(shard, "delivery rejected: "+reason.Error())
	return nil
}

// Complete implements Queue: resolve a lease with its shard's results.
// Completions are idempotent — a worker that lost its lease to expiry may
// still deliver, and whichever batch lands first wins; determinism makes
// every batch for one shard identical, so "first wins" is not a race on
// content. A batch is rejected (the shard requeued, with a strike) when
// it is short without carrying a cell error to explain it, or when any
// run's Index falls outside the shard — both are protocol violations, not
// transient failures. An accepted batch is journalled (when checkpointing
// is on) before it counts as done, so a coordinator crash after the ack
// can never lose an acknowledged shard.
func (c *Coordinator) Complete(leaseID string, runs []wire.Run) error {
	return c.CompleteStats(leaseID, runs, nil)
}

// CompleteStats is Complete carrying the worker's optional self-measured
// shard stats (see wire.WorkerStats). A nil stats — what old workers
// effectively send — is simply Complete; snapshots with an unknown
// version are ignored, never rejected, so the field can evolve without a
// protocol bump.
func (c *Coordinator) CompleteStats(leaseID string, runs []wire.Run, stats *wire.WorkerStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sl, ok := c.issued[leaseID]
	if !ok {
		return fmt.Errorf("dispatch: unknown lease %q", leaseID)
	}
	shard := sl.shard
	// Lease-ledger accounting: removing a live lease here puts the
	// delivery in flight until it is classified as completed or rejected
	// below. c.mu is released twice on the way (the committing wait and
	// the journal append), so `delivering` is what keeps a mid-delivery
	// scrape balanced: granted == active + completed + expired +
	// rejected + lost + delivering.
	_, live := c.leases[leaseID]
	delete(c.leases, leaseID)
	delete(c.deadlines, leaseID)
	if live {
		c.delivering++
	}
	settle := func(outcome *obs.Counter) {
		if live {
			c.delivering--
			outcome.Inc()
			live = false
		}
	}
	// A concurrent delivery for the same shard may be mid-journal-append;
	// wait for it to settle so the done check below absorbs this one as a
	// duplicate instead of double-committing the shard.
	for c.committing[shard] {
		c.commitDone.Wait()
	}
	if c.done[shard] {
		// Late duplicate of an expired-and-reissued lease. The work still
		// happened on the worker, so its stats count.
		settle(c.m.completed)
		c.recordStatsLocked(stats)
		c.m.event("complete", shard, leaseID, c.holders[leaseID], "duplicate")
		return nil
	}
	if err := c.validateSlice(sl, runs); err != nil {
		settle(c.m.rejected)
		c.m.event("reject", shard, leaseID, c.holders[leaseID], err.Error())
		if c.sliceOpen(sl) {
			c.requeueLocked(sl)
		}
		c.strikeLocked(shard, "delivery rejected: "+err.Error())
		return fmt.Errorf("%s (lease %s)", err, leaseID)
	}
	// Fold the delivery into the shard's gathered cells, keyed by global
	// Index. Duplicates — a late delivery of an expired slab whose cells
	// already arrived another way — are absorbed; determinism makes both
	// copies identical, so first-wins is not a race on content. Cells the
	// grant marked cached are dropped in favour of the store's copy.
	got := c.gathered[shard]
	if got == nil {
		got = make(map[int]wire.Run)
		c.gathered[shard] = got
	}
	cached := c.cachedIdx[shard]
	for _, r := range runs {
		if cached[r.Index] {
			continue
		}
		if _, dup := got[r.Index]; !dup {
			got[r.Index] = r
		}
	}
	c.resolveSliceLocked(sl)
	c.sweepOpenLocked(shard)
	if len(c.open[shard]) > 0 {
		// The shard is split across leases and other slices are still out:
		// settle this one and keep collecting.
		settle(c.m.completed)
		c.recordStatsLocked(stats)
		c.m.batchCells.Observe(float64(len(runs)))
		c.m.event("partial", shard, leaseID, c.holders[leaseID], "")
		c.cfg.Logf("dispatch: slice of shard %d/%d complete (%s), %d/%d cells gathered", shard, c.shards, leaseID, len(got)+len(c.cachedRuns[shard]), c.sizes[shard])
		return nil
	}
	batch := c.assembleShardLocked(shard)
	// Journal outside c.mu — the append fsyncs, and a slow disk must not
	// stall every /lease and /renew in the fleet behind it. committing
	// marks the shard claimed meanwhile, and it only counts as done once
	// the frame is durable, preserving the crash-after-ack guarantee. The
	// result-store inserts ride the same window: cellDigests is read-only
	// and the store has its own lock.
	j := c.journal
	st := c.cfg.Store
	c.committing[shard] = true
	c.mu.Unlock()
	j.appendFrame(journalFrame{Complete: &journalComplete{Shard: shard, Runs: batch}})
	if st != nil {
		for _, r := range batch {
			if r.Err != "" || cached[r.Index] {
				continue
			}
			st.Insert(c.cellDigests[r.Index], r.Comparison)
		}
	}
	c.mu.Lock()
	c.committing[shard] = false
	c.commitDone.Broadcast()
	c.done[shard] = true
	c.results[shard] = batch
	delete(c.gathered, shard)
	delete(c.cachedRuns, shard)
	delete(c.cachedIdx, shard)
	delete(c.open, shard)
	settle(c.m.completed)
	c.recordStatsLocked(stats)
	c.m.batchCells.Observe(float64(len(runs)))
	c.m.event("complete", shard, leaseID, c.holders[leaseID], "")
	if c.quarantined[shard] {
		// A parked shard's work arrived after all: unpark it. Its
		// strike-out already removed it from remaining, so the count
		// stays untouched.
		c.quarantined[shard] = false
		c.m.unparks.Inc()
		c.m.event("unpark", shard, leaseID, c.holders[leaseID], "late completion rescued quarantined shard")
		c.cfg.Logf("dispatch: quarantined shard %d/%d completed late (%s) — unparked", shard, c.shards, leaseID)
		return nil
	}
	c.remaining--
	c.cfg.Logf("dispatch: shard %d/%d complete (%s), %d shards remaining", shard, c.shards, leaseID, c.remaining)
	if c.remaining == 0 {
		close(c.finished)
	}
	return nil
}

// recordStatsLocked folds a shipped WorkerStats snapshot into the
// per-worker metric series, dropping nil and unknown-version snapshots.
// Called with c.mu held.
func (c *Coordinator) recordStatsLocked(stats *wire.WorkerStats) {
	if stats == nil || stats.Version != wire.StatsVersion {
		return
	}
	c.m.recordWorkerStats(stats)
}

// requeueLocked puts a slab back at the head of the queue, unless that
// exact slab is already queued (two rejected batches for one slice must
// not double-lease it). Called with c.mu held.
func (c *Coordinator) requeueLocked(s slab) {
	for _, q := range c.pending {
		if q == s {
			return
		}
	}
	c.pending = append([]slab{s}, c.pending...)
}

// assembleShardLocked builds a shard's canonical batch — store hits plus
// gathered deliveries, ascending global Index — once every open slice has
// resolved. Called with c.mu held.
func (c *Coordinator) assembleShardLocked(shard int) []wire.Run {
	got := c.gathered[shard]
	batch := make([]wire.Run, 0, len(c.cachedRuns[shard])+len(got))
	batch = append(batch, c.cachedRuns[shard]...)
	for _, r := range got {
		batch = append(batch, r)
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Index < batch[j].Index })
	return batch
}

// Collected returns the merge of every batch received so far in canonical
// order — Wait's result shape, without waiting.
func (c *Coordinator) Collected() []wire.Run {
	c.mu.Lock()
	batches := make([][]wire.Run, 0, len(c.results))
	for _, b := range c.results {
		batches = append(batches, b)
	}
	c.mu.Unlock()
	return wire.Merge(batches...)
}

// Drain stops the coordinator from issuing further leases: every
// subsequent Lease answers Done, so pulling workers wind down after their
// current shard. Completions for already-issued leases are still accepted.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// Done reports whether every shard has completed.
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remaining == 0
}

// Counts reports the queue state: shards pending (leasable now), leased
// out, and completed.
func (c *Coordinator) Counts() (pending, leased, done int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expire(time.Now())
	for _, d := range c.done {
		if d {
			done++
		}
	}
	return len(c.pending), len(c.leases), done
}

// Quarantined lists the parked shards — struck out MaxShardFailures
// times and withdrawn from the queue — in ascending order.
func (c *Coordinator) Quarantined() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for s, q := range c.quarantined {
		if q {
			out = append(out, s)
		}
	}
	return out
}

// Failures reports every shard that has been struck at least once, in
// ascending shard order, with its strike count, quarantine state, and
// the most recent strike's reason — the /status detail that turns "the
// sweep is stuck" into "shard 7 keeps killing its workers".
func (c *Coordinator) Failures() []ShardFailure {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []ShardFailure
	for s, n := range c.strikes {
		if n == 0 {
			continue
		}
		out = append(out, ShardFailure{
			Shard:       s,
			Strikes:     n,
			Quarantined: c.quarantined[s],
			Reason:      c.lastStrike[s],
		})
	}
	return out
}

// Epoch returns the coordinator instance's random lease-ID tag (visible
// in /status, useful for telling a resumed coordinator from its
// predecessor in logs).
func (c *Coordinator) Epoch() string { return c.epoch }

// Close releases the checkpoint journal's file handle. The coordinator
// remains usable as a queue, but further completions are no longer
// journalled; call it only when the sweep is over.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal.close()
	c.journal = nil
}

// Wait blocks until every shard has completed or ctx is cancelled (which
// drains the queue, so workers stop pulling), then returns the collected
// results merged into the canonical unsharded order. The error is ctx's
// on cancellation, else the first cell error in canonical order, else nil
// — mirroring Runner.Run, so "distributed" and "in-process" report
// failures the same way.
func (c *Coordinator) Wait(ctx context.Context) ([]wire.Run, error) {
	select {
	case <-c.finished:
	case <-ctx.Done():
		c.Drain()
	}
	merged := c.Collected()
	if err := ctx.Err(); err != nil {
		return merged, err
	}
	if parked := c.Quarantined(); len(parked) > 0 {
		return merged, fmt.Errorf("dispatch: %d shard(s) quarantined after repeated failures and withheld from the merge: %v (see /status)", len(parked), parked)
	}
	for _, r := range merged {
		if r.Err != "" {
			return merged, fmt.Errorf("dispatch: cell %d (set %d/%s): %s", r.Index, r.Set, r.Class, r.Err)
		}
	}
	return merged, nil
}
