package dispatch

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"turbulence/internal/core"
	"turbulence/internal/media"
)

// completeShards leases and completes n shards on c with protocol-valid
// batches, returning the completed shard ids.
func completeShards(t *testing.T, c *Coordinator, plan *core.Plan, n int) []int {
	t.Helper()
	var done []int
	for i := 0; i < n; i++ {
		g, _ := c.Lease("t")
		if g.LeaseID == "" {
			t.Fatalf("no lease for completion %d: %+v", i, g)
		}
		if err := c.Complete(g.LeaseID, batchFor(plan, g.Shard, g.Shards)); err != nil {
			t.Fatal(err)
		}
		done = append(done, g.Shard)
	}
	return done
}

// TestCheckpointResumeReplaysCompletions pins the happy recovery path:
// a coordinator journals two of three shards and dies; a successor on the
// same path (or via Resume, which needs only the path) replays them, leases
// out only the third, and a later coordinator on the finished journal has
// nothing to do. A -shards disagreement is overridden by the journal's
// carve — completion frames index into it.
func TestCheckpointResumeReplaysCompletions(t *testing.T) {
	plan := testPlan(t)
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")

	c1, err := New(plan, WithShards(3), WithCheckpoint(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	finished := completeShards(t, c1, plan, 2)
	c1.Close() // release the handle; the "crash" already happened fsync-wise

	c2, err := New(plan, WithShards(3), WithCheckpoint(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if pending, leased, done := c2.Counts(); done != 2 || pending != 1 || leased != 0 {
		t.Fatalf("resumed counts: pending=%d leased=%d done=%d, want 1/0/2", pending, leased, done)
	}
	g, _ := c2.Lease("t")
	if g.LeaseID == "" {
		t.Fatalf("resumed coordinator issued no lease: %+v", g)
	}
	for _, s := range finished {
		if g.Shard == s {
			t.Fatalf("resumed coordinator re-leased completed shard %d", s)
		}
	}
	if err := c2.Complete(g.LeaseID, batchFor(plan, g.Shard, g.Shards)); err != nil {
		t.Fatal(err)
	}
	if !c2.Done() {
		t.Fatal("sweep not done after the last shard")
	}
	c2.Close()

	// Resume needs only the path: the plan comes out of the journal.
	c3, err := Resume(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if !c3.Done() {
		t.Fatal("Resume of a finished journal is not done")
	}
	if g, _ := c3.Lease("t"); !g.Done {
		t.Fatalf("finished sweep still leasing: %+v", g)
	}
	if got := len(c3.Collected()); got != plan.Size() {
		t.Fatalf("resumed merge holds %d runs, want %d", got, plan.Size())
	}

	// A requested carve that disagrees with the journal loses.
	c4, err := New(plan, WithShards(5), WithCheckpoint(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	defer c4.Close()
	if c4.shards != 3 {
		t.Fatalf("journal carve not honoured: %d shards, want 3", c4.shards)
	}
}

// TestCheckpointRefusesDifferentSweep pins the digest guard: a journal
// written for one plan must never be replayed into a sweep of another.
func TestCheckpointRefusesDifferentSweep(t *testing.T) {
	plan := testPlan(t)
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	c1, err := New(plan, WithShards(3), WithCheckpoint(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	completeShards(t, c1, plan, 1)
	c1.Close()

	other := core.NewPlan(8). // different seed, same axes: different sweep
					ForPairs(core.PairKey{Set: 1, Class: media.Low})
	if _, err := New(other, WithShards(3), WithCheckpoint(ckpt)); err == nil || !contains(err.Error(), "different sweep") {
		t.Fatalf("digest mismatch not refused: %v", err)
	}
}

// TestCheckpointTornTailTolerated pins the crash-mid-append contract: a
// file ending inside a frame replays everything before the tear; replay
// then keeps journalling new completions behind the (overwritten) tear.
func TestCheckpointTornTailTolerated(t *testing.T) {
	plan := testPlan(t)
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	c1, err := New(plan, WithShards(3), WithCheckpoint(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	completeShards(t, c1, plan, 1)
	c1.Close()

	// The crash: a length prefix promising 64 bytes, then only 3.
	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var pre [4]byte
	binary.BigEndian.PutUint32(pre[:], 64)
	f.Write(pre[:])
	f.Write([]byte{1, 2, 3})
	f.Close()

	c2, err := New(plan, WithShards(3), WithCheckpoint(ckpt))
	if err != nil {
		t.Fatalf("torn tail refused: %v", err)
	}
	if _, _, done := c2.Counts(); done != 1 {
		t.Fatalf("replayed %d shards through the torn tail, want 1", done)
	}

	// Crash → resume → crash: the resumed coordinator appends behind the
	// (truncated) tear; the next resume must replay both the old and the
	// new completions, not read the tear as a frame spanning into them.
	completeShards(t, c2, plan, 1)
	c2.Close()
	c3, err := New(plan, WithShards(3), WithCheckpoint(ckpt))
	if err != nil {
		t.Fatalf("journal unreadable after resume appended past a tear: %v", err)
	}
	defer c3.Close()
	if _, _, done := c3.Counts(); done != 2 {
		t.Fatalf("second resume replayed %d shards, want 2", done)
	}
	completeShards(t, c3, plan, 1)
	if !c3.Done() {
		t.Fatal("sweep not done after the last shard")
	}
}

// TestCheckpointRefusesGarbage pins the corruption guards: a file that is
// not a checkpoint at all, and a journal holding a whole frame of garbage,
// both refuse — resuming a half-trusted sweep silently is the one thing
// the journal must never do.
func TestCheckpointRefusesGarbage(t *testing.T) {
	plan := testPlan(t)
	dir := t.TempDir()

	notCkpt := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(notCkpt, []byte("these are not the frames you are looking for"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(plan, WithCheckpoint(notCkpt)); err == nil {
		t.Fatal("arbitrary file accepted as a checkpoint")
	}
	if _, err := Resume(notCkpt); err == nil {
		t.Fatal("arbitrary file accepted by Resume")
	}

	// A whole frame that decodes to garbage is corruption, not a torn tail.
	ckpt := filepath.Join(dir, "sweep.ckpt")
	c1, err := New(plan, WithShards(3), WithCheckpoint(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	completeShards(t, c1, plan, 1)
	c1.Close()
	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var pre [4]byte
	binary.BigEndian.PutUint32(pre[:], 8)
	f.Write(pre[:])
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef})
	f.Close()
	if _, err := New(plan, WithShards(3), WithCheckpoint(ckpt)); err == nil {
		t.Fatal("corrupt frame replayed as if valid")
	}
}
