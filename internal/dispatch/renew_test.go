package dispatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"turbulence/internal/wire"

	"turbulence/internal/core"
)

// batchFor builds a protocol-valid batch for a shard: right indices,
// right count (profiles don't matter to the queue).
func batchFor(plan *core.Plan, shard, shards int) []wire.Run {
	var runs []wire.Run
	for _, k := range plan.Shard(shard, shards).Keys() {
		runs = append(runs, wire.Run{Index: k.Index, Set: k.Pair.Set, Class: k.Pair.Class.String(),
			Comparison: &core.Comparison{Set: k.Pair.Set}})
	}
	return runs
}

// TestRenewExtendsLease pins the renewal verb at the queue level: a lease
// renewed within its TTL survives past the original deadline; a lease
// left alone expires; renewing an expired, unknown or already-resolved
// lease answers ErrLeaseLost.
func TestRenewExtendsLease(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2), WithLeaseTTL(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := c.Lease("a")
	g2, _ := c.Lease("b")
	if g1.LeaseID == "" || g2.LeaseID == "" {
		t.Fatalf("expected two grants: %+v / %+v", g1, g2)
	}
	if g1.TTLMillis <= 0 {
		t.Fatalf("grant carries no TTL: %+v", g1)
	}

	// Heartbeat g1 across 4 TTL windows; leave g2 to lapse.
	for i := 0; i < 8; i++ {
		time.Sleep(30 * time.Millisecond)
		if err := c.Renew(g1.LeaseID, "a"); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	// g2 expired along the way (Renew's expiry scan requeued it).
	if err := c.Renew(g2.LeaseID, "b"); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("renewing an expired lease: %v, want ErrLeaseLost", err)
	}
	if err := c.Renew(fmt.Sprintf("lease-%s-99-shard-0", c.epoch), "x"); !errors.Is(err, ErrLeaseLost) {
		t.Fatal("renewing an unknown lease did not answer ErrLeaseLost")
	}
	// g1 is still live: completing it must land.
	if err := c.Complete(g1.LeaseID, batchFor(plan, g1.Shard, g1.Shards)); err != nil {
		t.Fatalf("completing a renewed lease: %v", err)
	}
	// Renewing a lease whose shard was resolved by someone else: lost.
	g3, _ := c.Lease("c")
	if g3.LeaseID == "" {
		t.Fatalf("expected the requeued shard: %+v", g3)
	}
	g4, _ := c.Lease("d") // same shard could not be leased twice; d waits
	if !g4.Wait {
		t.Fatalf("expected wait: %+v", g4)
	}
	if err := c.Complete(g3.LeaseID, batchFor(plan, g3.Shard, g3.Shards)); err != nil {
		t.Fatal(err)
	}
}

// TestRenewalPreventsDoubleRun is the long-shard acceptance pin: with
// LeaseTTL far below the shard's runtime, the worker's heartbeat keeps
// the one lease alive — the sweep completes with zero re-issued leases,
// zero duplicate simulations, and output byte-identical to unsharded.
// Before renewal existed, this exact shape double-ran the shard (the TTL
// lapsed mid-simulation and a second worker pulled the re-issued lease).
func TestRenewalPreventsDoubleRun(t *testing.T) {
	plan := testPlan(t)
	want := unshardedGob(t, plan)

	// One shard holding all 6 cells: runtime is many multiples of the
	// 250ms TTL. Heartbeat every 25ms = ten beats per window.
	c, err := New(plan,
		WithShards(1),
		WithLeaseTTL(250*time.Millisecond),
		WithRetry(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const workers = 2
	var wg sync.WaitGroup
	completed := make([]int, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := NewWorker(Loopback(c),
				WithName(fmt.Sprintf("w%d", i)),
				WithRunWorkers(1),
				WithRetry(10*time.Millisecond),
				WithHeartbeat(25*time.Millisecond),
			)
			completed[i], errs[i] = w.Run(ctx)
		}()
	}
	merged, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	total := 0
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		total += completed[i]
	}
	if total != 1 {
		t.Fatalf("workers completed %d shards, want exactly 1 (renewal must prevent the double run)", total)
	}
	if n := len(c.issued); n != 1 {
		t.Fatalf("%d leases issued, want exactly 1 — the TTL lapsed despite renewal", n)
	}
	var buf bytes.Buffer
	if err := wire.WriteGob(&buf, merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("renewed long-shard sweep differs from unsharded run")
	}
}

// TestDrainStopsLeasing is the direct Drain unit (previously only
// exercised through the end-to-end smoke): draining flips every
// subsequent Lease to Done while completions for already-issued leases
// still land and appear in the partial merge.
func TestDrainStopsLeasing(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := c.Lease("a")
	if g.LeaseID == "" {
		t.Fatalf("expected a grant: %+v", g)
	}
	c.Drain()
	if g2, _ := c.Lease("b"); !g2.Done {
		t.Fatalf("lease after Drain: %+v, want Done", g2)
	}
	batch := batchFor(plan, g.Shard, g.Shards)
	if err := c.Complete(g.LeaseID, batch); err != nil {
		t.Fatalf("completion after Drain rejected: %v", err)
	}
	if got := c.Collected(); len(got) != len(batch) {
		t.Fatalf("partial merge holds %d runs, want %d", len(got), len(batch))
	}
	if c.Done() {
		t.Fatal("coordinator claims done with a shard never issued")
	}
}

// TestWorkerHardAbort is the second-ctrl-C unit: cancelling RunContext
// while a shard simulates aborts mid-run — no completion ships, Run
// returns the context's error, and the abandoned lease expires back into
// the queue for the next worker.
func TestWorkerHardAbort(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(1), WithLeaseTTL(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	hardCtx, abort := context.WithCancel(context.Background())
	defer abort()
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if _, leased, _ := c.Counts(); leased > 0 {
				abort() // the second ctrl-C, observed mid-simulation
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	w := NewWorker(c, WithName("abortee"), WithRunWorkers(1), WithRunContext(hardCtx))
	n, err := w.Run(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("hard abort returned %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Fatalf("aborted worker claims %d completed shards", n)
	}
	if c.Done() {
		t.Fatal("coordinator done despite the abort")
	}
	// The abandoned lease expires; the shard comes back.
	time.Sleep(60 * time.Millisecond)
	if g, _ := c.Lease("next"); g.LeaseID == "" {
		t.Fatalf("abandoned shard not re-leasable: %+v", g)
	}
}

// TestQuarantineParksPoisonedShard pins graceful degradation under a
// persistently failing shard: after MaxShardFailures strikes the shard is
// parked (reported by Quarantined, withheld from leasing), the rest of
// the sweep completes, Wait names the parked shard in its error — and a
// late good batch for it still unparks and completes the merge.
func TestQuarantineParksPoisonedShard(t *testing.T) {
	plan := testPlan(t)
	c, err := New(plan, WithShards(2), WithMaxShardFailures(2))
	if err != nil {
		t.Fatal(err)
	}
	// Two protocol-violating deliveries: strikes 1 and 2 → parked.
	g1, _ := c.Lease("a")
	if err := c.Complete(g1.LeaseID, nil); err == nil {
		t.Fatal("short batch accepted")
	}
	g2, _ := c.Lease("a")
	if g2.Shard != g1.Shard {
		t.Fatalf("rejected shard not requeued first: %d vs %d", g2.Shard, g1.Shard)
	}
	if err := c.Complete(g2.LeaseID, nil); err == nil {
		t.Fatal("short batch accepted")
	}
	parked := c.Quarantined()
	if len(parked) != 1 || parked[0] != g1.Shard {
		t.Fatalf("Quarantined() = %v, want [%d]", parked, g1.Shard)
	}
	// The parked shard is never leased again; the other shard is.
	g3, _ := c.Lease("b")
	if g3.LeaseID == "" || g3.Shard == g1.Shard {
		t.Fatalf("quarantined shard re-leased: %+v", g3)
	}
	if err := c.Complete(g3.LeaseID, batchFor(plan, g3.Shard, g3.Shards)); err != nil {
		t.Fatal(err)
	}
	// The sweep finishes — degraded, not wedged — and says why.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	merged, err := c.Wait(ctx)
	if err == nil || !contains(err.Error(), "quarantined") {
		t.Fatalf("Wait error does not name the quarantine: %v", err)
	}
	if len(merged) != c.sizes[g3.Shard] {
		t.Fatalf("merged %d runs, want the healthy shard's %d", len(merged), c.sizes[g3.Shard])
	}
	// A late good batch unparks the shard and completes the merge.
	if err := c.Complete(g2.LeaseID, batchFor(plan, g1.Shard, g1.Shards)); err != nil {
		t.Fatalf("late good batch for a parked shard rejected: %v", err)
	}
	if len(c.Quarantined()) != 0 {
		t.Fatal("shard still parked after a good batch")
	}
	if merged, err = c.Wait(ctx); err != nil {
		t.Fatalf("Wait after unpark: %v", err)
	}
	if len(merged) != plan.Size() {
		t.Fatalf("merged %d runs, want %d", len(merged), plan.Size())
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
