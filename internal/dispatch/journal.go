package dispatch

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"turbulence/internal/wire"
)

// The checkpoint journal is the coordinator's crash insurance: an
// append-only file of length-prefixed gob frames — one header naming the
// sweep (PlanSpec, its digest, the shard carve), then one completion
// frame per collected shard — fsync'd after every append. A coordinator
// restarted with Resume (or New with the same WithCheckpoint path)
// replays the journal, marks the recorded shards done, and re-leases only
// the rest; because every frame holds the shard's full wire.Run batch,
// the resumed merge is byte-identical to an uninterrupted run.
//
// Each frame is an independent gob stream behind a uint32 length prefix,
// so appends from successive coordinator processes never share encoder
// state (concatenated gob streams from independent encoders do not
// decode). A crash mid-append leaves a torn tail — a short final frame —
// which replay tolerates by stopping there: the unrecorded shard simply
// re-runs. Anything else that does not decode is corruption and refuses
// loudly rather than resuming a half-trusted sweep.

// journalMagic guards against pointing -checkpoint at an arbitrary file.
const journalMagic = "turbulence-checkpoint"

// journalFrame is the one frame shape; exactly one field is set.
type journalFrame struct {
	Header   *journalHeader
	Complete *journalComplete
}

// journalHeader is the first frame: which sweep this journal belongs to.
type journalHeader struct {
	Magic   string
	Version int    // wire.Version at write time
	Digest  string // Spec.Digest(), the refuse-to-mix key
	Spec    wire.PlanSpec
	Shards  int // the shard carve the completion frames index into
}

// journalComplete records one collected shard.
type journalComplete struct {
	Shard int
	Runs  []wire.Run
}

// journal is the open append handle. Nil receiver = checkpointing off.
type journal struct {
	f    *os.File
	dead bool // a failed append stops checkpointing (see append)
	logf func(format string, args ...any)
}

// appendFrame writes one length-prefixed gob frame and fsyncs. On any
// error the journal goes dead: the file may now hold a torn frame, and
// appending more behind it would put valid frames after garbage — which
// replay must treat as corruption. A dead journal only costs resume
// coverage (later shards re-run after a crash); the live sweep proceeds.
func (j *journal) appendFrame(fr journalFrame) {
	if j == nil || j.dead {
		return
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(fr); err != nil {
		j.fail("encode", err)
		return
	}
	var pre [4]byte
	binary.BigEndian.PutUint32(pre[:], uint32(body.Len()))
	if _, err := j.f.Write(pre[:]); err != nil {
		j.fail("write", err)
		return
	}
	if _, err := j.f.Write(body.Bytes()); err != nil {
		j.fail("write", err)
		return
	}
	if err := j.f.Sync(); err != nil {
		j.fail("fsync", err)
	}
}

func (j *journal) fail(op string, err error) {
	j.dead = true
	j.logf("dispatch: checkpoint %s failed, journalling disabled for this run: %v", op, err)
}

func (j *journal) close() {
	if j != nil && j.f != nil {
		j.f.Close()
	}
}

// errTornTail distinguishes "file ends mid-frame" (a crash during append;
// replay stops there) from corruption (refused).
var errTornTail = errors.New("torn tail")

// readFrame decodes the next frame. io.EOF = clean end; errTornTail = the
// file ends inside a frame.
func readFrame(r io.Reader) (journalFrame, error) {
	var fr journalFrame
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF {
			return fr, io.EOF
		}
		return fr, errTornTail
	}
	body := make([]byte, binary.BigEndian.Uint32(pre[:]))
	if _, err := io.ReadFull(r, body); err != nil {
		return fr, errTornTail
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&fr); err != nil {
		return fr, fmt.Errorf("dispatch: corrupt checkpoint frame: %w", err)
	}
	return fr, nil
}

// readJournal replays an existing checkpoint file: header plus every
// fully-written completion frame. A torn tail after at least one whole
// frame is a crash artifact and tolerated; a file that does not even hold
// a whole header, or holds frames that decode to garbage, is refused.
func readJournal(path string) (*journalHeader, []journalComplete, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := io.Reader(f)
	first, err := readFrame(r)
	if err != nil {
		return nil, nil, fmt.Errorf("dispatch: checkpoint %s: unreadable header: %w", path, err)
	}
	h := first.Header
	if h == nil || h.Magic != journalMagic {
		return nil, nil, fmt.Errorf("dispatch: %s is not a turbulence checkpoint", path)
	}
	if h.Version != wire.Version {
		return nil, nil, fmt.Errorf("dispatch: checkpoint %s was written by wire version %d, this build speaks %d", path, h.Version, wire.Version)
	}
	var done []journalComplete
	for {
		fr, err := readFrame(r)
		if err == io.EOF {
			return h, done, nil
		}
		if errors.Is(err, errTornTail) {
			// Crash mid-append: everything before the tear is good.
			return h, done, nil
		}
		if err != nil {
			return nil, nil, err
		}
		if fr.Complete == nil {
			return nil, nil, fmt.Errorf("dispatch: checkpoint %s: unexpected non-completion frame", path)
		}
		done = append(done, *fr.Complete)
	}
}

// openJournal opens path for appending, creating it (with a header frame)
// when absent or empty. When the file already holds a journal, the caller
// has replayed it and vouches the header matches; the handle just appends.
func openJournal(path string, h journalHeader, fresh bool, logf func(string, ...any)) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j := &journal{f: f, logf: logf}
	if fresh {
		j.appendFrame(journalFrame{Header: &h})
		if j.dead {
			f.Close()
			return nil, fmt.Errorf("dispatch: cannot write checkpoint header to %s", path)
		}
	}
	return j, nil
}
