package dispatch

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"turbulence/internal/obs"
	"turbulence/internal/wire"
)

// The checkpoint journal is the coordinator's crash insurance: an
// append-only file of length-prefixed gob frames — one header naming the
// sweep (PlanSpec, its digest, the shard carve), then one completion
// frame per collected shard — fsync'd after every append. A coordinator
// restarted with Resume (or New with the same WithCheckpoint path)
// replays the journal, marks the recorded shards done, and re-leases only
// the rest; because every frame holds the shard's full wire.Run batch,
// the resumed merge is byte-identical to an uninterrupted run.
//
// Each frame is an independent gob stream behind a uint32 length prefix,
// so appends from successive coordinator processes never share encoder
// state (concatenated gob streams from independent encoders do not
// decode). A crash mid-append leaves a torn tail — a short final frame —
// which replay tolerates by stopping there: the unrecorded shard simply
// re-runs. The resuming appender then truncates the tear before writing,
// so new frames land behind the last whole one — never behind garbage,
// which the next replay would misread as a frame length spanning into
// them. Anything else that does not decode is corruption and refuses
// loudly rather than resuming a half-trusted sweep.

// journalMagic guards against pointing -checkpoint at an arbitrary file.
const journalMagic = "turbulence-checkpoint"

// journalFrame is the one frame shape; exactly one field is set.
type journalFrame struct {
	Header   *journalHeader
	Complete *journalComplete
}

// journalHeader is the first frame: which sweep this journal belongs to.
type journalHeader struct {
	Magic   string
	Version int    // wire.Version at write time
	Digest  string // Spec.Digest(), the refuse-to-mix key
	Spec    wire.PlanSpec
	Shards  int // the shard carve the completion frames index into
}

// journalComplete records one collected shard.
type journalComplete struct {
	Shard int
	Runs  []wire.Run
}

// journal is the open append handle. Nil receiver = checkpointing off.
// Appends serialise on the journal's own mutex, not the coordinator's, so
// an fsync to a slow disk never stalls lease and renew traffic.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	dead bool // a failed append stops checkpointing (see append)
	logf func(format string, args ...any)

	// Set by the coordinator after open; nil-safe (obs handles are only
	// read when non-nil).
	fsyncs       *obs.Counter
	fsyncSeconds *obs.Histogram
}

// appendFrame writes one length-prefixed gob frame and fsyncs. On any
// error the journal goes dead: the file may now hold a torn frame, and
// appending more behind it would put valid frames after garbage — which
// replay must treat as corruption. A dead journal only costs resume
// coverage (later shards re-run after a crash); the live sweep proceeds.
func (j *journal) appendFrame(fr journalFrame) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(fr); err != nil {
		j.fail("encode", err)
		return
	}
	var pre [4]byte
	binary.BigEndian.PutUint32(pre[:], uint32(body.Len()))
	if _, err := j.f.Write(pre[:]); err != nil {
		j.fail("write", err)
		return
	}
	if _, err := j.f.Write(body.Bytes()); err != nil {
		j.fail("write", err)
		return
	}
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		j.fail("fsync", err)
		return
	}
	if j.fsyncs != nil {
		j.fsyncs.Inc()
		j.fsyncSeconds.Observe(time.Since(start).Seconds())
	}
}

func (j *journal) fail(op string, err error) {
	j.dead = true
	j.logf("dispatch: checkpoint %s failed, journalling disabled for this run: %v", op, err)
}

func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
	}
}

// errTornTail distinguishes "file ends mid-frame" (a crash during append;
// replay stops there) from corruption (refused).
var errTornTail = errors.New("torn tail")

// readFrame decodes the next frame. io.EOF = clean end; errTornTail = the
// file ends inside a frame.
func readFrame(r io.Reader) (journalFrame, error) {
	var fr journalFrame
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF {
			return fr, io.EOF
		}
		return fr, errTornTail
	}
	body := make([]byte, binary.BigEndian.Uint32(pre[:]))
	if _, err := io.ReadFull(r, body); err != nil {
		return fr, errTornTail
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&fr); err != nil {
		return fr, fmt.Errorf("dispatch: corrupt checkpoint frame: %w", err)
	}
	return fr, nil
}

// countingReader tracks how many bytes have been consumed, so readJournal
// can report where the last whole frame ends.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// readJournal replays an existing checkpoint file: header plus every
// fully-written completion frame. A torn tail after at least one whole
// frame is a crash artifact and tolerated; a file that does not even hold
// a whole header, or holds frames that decode to garbage, is refused.
// end is the byte offset just past the last whole frame — the appender
// truncates the file there before writing, so a tear never sits between
// old frames and new ones.
func readJournal(path string) (h *journalHeader, done []journalComplete, end int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	defer f.Close()
	cr := &countingReader{r: f}
	first, err := readFrame(cr)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("dispatch: checkpoint %s: unreadable header: %w", path, err)
	}
	h = first.Header
	if h == nil || h.Magic != journalMagic {
		return nil, nil, 0, fmt.Errorf("dispatch: %s is not a turbulence checkpoint", path)
	}
	if h.Version != wire.Version {
		return nil, nil, 0, fmt.Errorf("dispatch: checkpoint %s was written by wire version %d, this build speaks %d", path, h.Version, wire.Version)
	}
	end = cr.n
	for {
		fr, err := readFrame(cr)
		if err == io.EOF {
			return h, done, end, nil
		}
		if errors.Is(err, errTornTail) {
			// Crash mid-append: everything before the tear is good.
			return h, done, end, nil
		}
		if err != nil {
			return nil, nil, 0, err
		}
		if fr.Complete == nil {
			return nil, nil, 0, fmt.Errorf("dispatch: checkpoint %s: unexpected non-completion frame", path)
		}
		done = append(done, *fr.Complete)
		end = cr.n
	}
}

// openJournal opens path for appending, creating it (with a header frame)
// when absent or empty. When the file already holds a journal, the caller
// has replayed it, vouches the header matches, and passes replay's end
// offset; the file is truncated there first, so a torn tail from the
// previous process's crash is cut rather than buried under new frames —
// appending behind a tear would make the next replay read the tear's
// partial length prefix as a frame spanning into the fresh completions.
func openJournal(path string, h journalHeader, fresh bool, end int64, logf func(string, ...any)) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j := &journal{f: f, logf: logf}
	if fresh {
		j.appendFrame(journalFrame{Header: &h})
		if j.dead {
			f.Close()
			return nil, fmt.Errorf("dispatch: cannot write checkpoint header to %s", path)
		}
		return j, nil
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("dispatch: cannot trim checkpoint %s to its last whole frame: %w", path, err)
	}
	return j, nil
}
