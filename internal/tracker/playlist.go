package tracker

import (
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/media"
	"turbulence/internal/netsim"
	"turbulence/internal/rdt"
	"turbulence/internal/wms"
)

// PlaylistEntry names one clip to play and which stack plays it.
type PlaylistEntry struct {
	ClipRef string
	Format  media.Format
}

// Playlist automates sequential playback of multiple clips, as both
// MediaTracker and RealTracker supported ("a customized play list to
// automatic playback of multiple video clips", paper §2.B). Entries run
// back to back with a settling gap between them.
type Playlist struct {
	host       *netsim.Host
	wmsServer  *wms.Server
	rdtServer  *rdt.Server
	entries    []PlaylistEntry
	gap        time.Duration
	reports    []*Report
	onComplete func([]*Report)
	next       int
	running    bool
}

// DefaultGap separates consecutive playlist entries.
const DefaultGap = 2 * time.Second

// Playlist port assignments; sequential playback reuses one pair per stack.
const (
	playlistWMSCtl  = 4100
	playlistWMSData = 4101
	playlistRDTCtl  = 5100
	playlistRDTData = 5101
)

// NewPlaylist builds a playlist. Servers may be nil if no entry uses that
// stack.
func NewPlaylist(host *netsim.Host, wmsSrv *wms.Server, rdtSrv *rdt.Server, entries []PlaylistEntry, onComplete func([]*Report)) *Playlist {
	return &Playlist{
		host:       host,
		wmsServer:  wmsSrv,
		rdtServer:  rdtSrv,
		entries:    entries,
		gap:        DefaultGap,
		onComplete: onComplete,
	}
}

// SetGap overrides the inter-entry gap.
func (p *Playlist) SetGap(d time.Duration) { p.gap = d }

// Reports returns the accumulated reports.
func (p *Playlist) Reports() []*Report { return p.reports }

// Start begins the playlist.
func (p *Playlist) Start() {
	if p.running {
		panic("tracker: playlist already running")
	}
	p.running = true
	p.playNext()
}

func (p *Playlist) playNext() {
	if p.next >= len(p.entries) {
		p.running = false
		if p.onComplete != nil {
			p.onComplete(p.reports)
		}
		return
	}
	entry := p.entries[p.next]
	p.next++
	done := func(r *Report) {
		p.reports = append(p.reports, r)
		p.host.After(p.gap, "playlist.gap", func(eventsim.Time) { p.playNext() })
	}
	switch entry.Format {
	case media.WindowsMedia:
		if p.wmsServer == nil {
			panic("tracker: playlist entry needs a WMS server")
		}
		StartMediaTracker(p.host, p.wmsServer, entry.ClipRef, playlistWMSCtl, playlistWMSData, done)
	default:
		if p.rdtServer == nil {
			panic("tracker: playlist entry needs a RealServer")
		}
		StartRealTracker(p.host, p.rdtServer, entry.ClipRef, playlistRDTCtl, playlistRDTData, done)
	}
}
