// Package tracker reimplements the paper's two instrumented players'
// recording layer: MediaTracker (built on the Windows Media SDK) and
// RealTracker (built on the RealSystem SDK). Each wraps a player model and
// records what the paper lists in §2.B: encoded bit rate, playback
// bandwidth, application packets received/lost/recovered, frame rate,
// transport protocol and reception quality, plus the two-layer packet
// arrival times behind Figure 12. Playlists automate multi-clip runs, as
// both original tools did.
package tracker

import (
	"fmt"
	"io"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/rdt"
	"turbulence/internal/stats"
	"turbulence/internal/wms"
)

// Arrival is one packet receipt observation at a given layer.
type Arrival struct {
	At  time.Duration // relative to tracker start
	Seq uint32
}

// Report is the statistics record a tracker produces for one clip playback.
type Report struct {
	Tool     string // "MediaTracker" or "RealTracker"
	ClipRef  string
	Protocol string // always "UDP" in the paper's forced-UDP runs

	// Stream description as captured from the player (paper Table 1's
	// encoded rates come from here, not from the web page labels).
	EncodedBps  float64
	FrameRate   float64 // encoded fps
	Duration    time.Duration
	TotalFrames int

	// Per-second samples.
	Bandwidth stats.TimeSeries // application-level bits/second
	FPS       stats.TimeSeries // achieved frames/second

	// Packet receipt times at the two layers (Figure 12). AppPackets is
	// populated only by MediaTracker — the paper notes RealTracker could
	// not gather application packets.
	OSPackets  []Arrival
	AppPackets []Arrival

	// Counters.
	PacketsReceived, PacketsLost, PacketsRecovered int
	FramesPlayed, FramesExpected                   int

	// Timing.
	StartedAt   eventsim.Time
	PlayBeganAt eventsim.Time
	FinishedAt  eventsim.Time

	// Derived at completion.
	AvgPlaybackBps float64 // mean of the non-zero bandwidth seconds
	AvgFPS         float64
	Completed      bool
}

// StartupDelay is the wait between starting the session and playout.
func (r *Report) StartupDelay() time.Duration {
	if r.PlayBeganAt == 0 {
		return 0
	}
	return r.PlayBeganAt.Sub(r.StartedAt)
}

// EncodedKbps returns the encoded rate in Kbps, Table 1's unit.
func (r *Report) EncodedKbps() float64 { return r.EncodedBps / 1000 }

// LossRate is the unrecovered packet loss fraction.
func (r *Report) LossRate() float64 {
	total := r.PacketsReceived + r.PacketsLost
	if total == 0 {
		return 0
	}
	return float64(r.PacketsLost) / float64(total)
}

// finalize computes the derived statistics.
func (r *Report) finalize() {
	var bpsSamples []float64
	for _, s := range r.Bandwidth.Samples() {
		if s.Value > 0 {
			bpsSamples = append(bpsSamples, s.Value)
		}
	}
	r.AvgPlaybackBps = stats.Mean(bpsSamples)
	var fpsSamples []float64
	for _, s := range r.FPS.Samples() {
		fpsSamples = append(fpsSamples, s.Value)
	}
	r.AvgFPS = stats.Mean(fpsSamples)
}

// String renders a summary line.
func (r *Report) String() string {
	return fmt.Sprintf("%s %s: enc=%.1fKbps bw=%.1fKbps fps=%.1f recv=%d lost=%d recovered=%d startup=%v",
		r.Tool, r.ClipRef, r.EncodedKbps(), r.AvgPlaybackBps/1000, r.AvgFPS,
		r.PacketsReceived, r.PacketsLost, r.PacketsRecovered, r.StartupDelay())
}

// WriteCSV emits the per-second samples as CSV (second, bandwidthKbps,
// fps) — the tracker tools' on-disk recording format.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s %s encoded=%.1fKbps protocol=%s\n", r.Tool, r.ClipRef, r.EncodedKbps(), r.Protocol); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "second,bandwidth_kbps,fps"); err != nil {
		return err
	}
	bw := r.Bandwidth.MeanSeries(time.Second)
	fps := r.FPS.MeanSeries(time.Second)
	n := len(bw)
	if len(fps) > n {
		n = len(fps)
	}
	for i := 0; i < n; i++ {
		var b, f float64
		if i < len(bw) {
			b = bw[i].Y
		}
		if i < len(fps) {
			f = fps[i].Y
		}
		if _, err := fmt.Fprintf(w, "%d,%.2f,%.2f\n", i, b/1000, f); err != nil {
			return err
		}
	}
	return nil
}

// common wires the sampling shared by both trackers.
type common struct {
	host      *netsim.Host
	report    *Report
	epoch     eventsim.Time
	lastBytes int
	stopPoll  func()
	onDone    func(*Report)
}

func newCommon(host *netsim.Host, tool, clipRef string, onDone func(*Report)) *common {
	c := &common{
		host: host,
		report: &Report{
			Tool:     tool,
			ClipRef:  clipRef,
			Protocol: "UDP",
		},
		epoch:  host.Now(),
		onDone: onDone,
	}
	c.report.StartedAt = host.Now()
	return c
}

func (c *common) rel(now eventsim.Time) time.Duration { return now.Sub(c.epoch) }

// startPolling samples application bandwidth once per second from a bytes
// counter getter.
func (c *common) startPolling(bytesSoFar func() int) {
	c.stopPoll = c.host.Network().Sched.Ticker(time.Second, "tracker.poll", func(now eventsim.Time) bool {
		cur := bytesSoFar()
		delta := cur - c.lastBytes
		c.lastBytes = cur
		c.report.Bandwidth.Add(c.rel(now), float64(delta*8))
		return true
	})
}

func (c *common) finish(now eventsim.Time, completed bool) {
	if c.stopPoll != nil {
		c.stopPoll()
	}
	c.report.FinishedAt = now
	c.report.Completed = completed
	c.report.finalize()
	if c.onDone != nil {
		c.onDone(c.report)
	}
}

// MediaTracker wraps a Windows Media player session.
type MediaTracker struct {
	*common
	player *wms.Player
}

// StartMediaTracker builds the player for clipRef on host against server,
// attaches the recorder, and starts playback. onDone fires with the final
// report.
func StartMediaTracker(host *netsim.Host, server *wms.Server, clipRef string, ctlPort, dataPort uint16, onDone func(*Report)) *MediaTracker {
	c := newCommon(host, "MediaTracker", clipRef, onDone)
	t := &MediaTracker{common: c}
	ev := wms.PlayerEvents{
		OSPacket: func(now eventsim.Time, seq uint32, _ int) {
			c.report.OSPackets = append(c.report.OSPackets, Arrival{At: c.rel(now), Seq: seq})
		},
		AppPacket: func(now eventsim.Time, seq uint32) {
			c.report.AppPackets = append(c.report.AppPackets, Arrival{At: c.rel(now), Seq: seq})
		},
		SecondPlayed: func(now eventsim.Time, second, played, expected int) {
			c.report.FPS.Add(c.rel(now), float64(played))
		},
		StateChange: func(now eventsim.Time, s wms.State) {
			if s == wms.Playing {
				c.report.PlayBeganAt = now
			}
		},
		Done: func(now eventsim.Time) { t.complete(now) },
	}
	t.player = wms.NewPlayer(host, server.Host().Addr(), clipRef,
		toPort(ctlPort), toPort(dataPort), ev)
	t.player.Start()
	c.startPolling(func() int { return t.player.BytesReceived })
	return t
}

func (t *MediaTracker) complete(now eventsim.Time) {
	r := t.report
	m := t.player.Meta()
	r.EncodedBps = float64(m.EncodedBps)
	r.FrameRate = m.FrameRate()
	r.Duration = m.Duration()
	r.TotalFrames = int(m.TotalFrames)
	r.PacketsReceived = t.player.UnitsReceived
	r.PacketsLost = t.player.UnitsLost
	r.FramesPlayed = t.player.FramesPlayed
	r.FramesExpected = t.player.FramesExpected
	t.finish(now, t.player.FramesExpected > 0)
}

// Report returns the (final after Done) report.
func (t *MediaTracker) Report() *Report { return t.report }

// Player exposes the wrapped player.
func (t *MediaTracker) Player() *wms.Player { return t.player }

// RealTracker wraps a RealPlayer session.
type RealTracker struct {
	*common
	player *rdt.Player
}

// StartRealTracker builds and starts an instrumented RealPlayer session.
func StartRealTracker(host *netsim.Host, server *rdt.Server, clipRef string, ctlPort, dataPort uint16, onDone func(*Report)) *RealTracker {
	c := newCommon(host, "RealTracker", clipRef, onDone)
	t := &RealTracker{common: c}
	ev := rdt.PlayerEvents{
		OSPacket: func(now eventsim.Time, seq uint32, _ int) {
			c.report.OSPackets = append(c.report.OSPackets, Arrival{At: c.rel(now), Seq: seq})
		},
		SecondPlayed: func(now eventsim.Time, second, played, expected int) {
			c.report.FPS.Add(c.rel(now), float64(played))
		},
		StateChange: func(now eventsim.Time, s rdt.State) {
			if s == rdt.Playing {
				c.report.PlayBeganAt = now
			}
		},
		Done: func(now eventsim.Time) { t.complete(now) },
	}
	t.player = rdt.NewPlayer(host, server.Host().Addr(), clipRef,
		toPort(ctlPort), toPort(dataPort), ev)
	t.player.Start()
	c.startPolling(func() int { return t.player.BytesReceived })
	return t
}

func (t *RealTracker) complete(now eventsim.Time) {
	r := t.report
	m := t.player.Meta()
	r.EncodedBps = m.EncodedBps
	r.FrameRate = m.FrameRate
	r.Duration = m.Duration
	r.TotalFrames = m.TotalFrames
	r.PacketsReceived = t.player.PacketsReceived
	r.PacketsLost = t.player.PacketsLost
	r.PacketsRecovered = t.player.PacketsRecovered
	r.FramesPlayed = t.player.FramesPlayed
	r.FramesExpected = t.player.FramesExpected
	t.finish(now, t.player.FramesExpected > 0)
}

// Report returns the (final after Done) report.
func (t *RealTracker) Report() *Report { return t.report }

// Player exposes the wrapped player.
func (t *RealTracker) Player() *rdt.Player { return t.player }

func toPort(p uint16) inet.Port { return inet.Port(p) }
