package tracker

import (
	"math"
	"strings"
	"testing"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netsim"
	"turbulence/internal/rdt"
	"turbulence/internal/wms"
)

var (
	clientAddr = inet.MakeAddr(130, 215, 10, 5)
	wmsAddr    = inet.MakeAddr(207, 46, 1, 9)
	rdtAddr    = inet.MakeAddr(209, 247, 1, 20)
)

// testbed wires a client to both a WMS and a Real server.
func testbed(t *testing.T, seed int64) (*netsim.Network, *netsim.Host, *wms.Server, *rdt.Server) {
	t.Helper()
	n := netsim.New(seed)
	c := n.AddHost(clientAddr)
	w := n.AddHost(wmsAddr)
	r := n.AddHost(rdtAddr)
	mk := func(third byte) []netsim.HopSpec {
		specs := make([]netsim.HopSpec, 5)
		for i := range specs {
			specs[i] = netsim.HopSpec{
				Addr:      inet.MakeAddr(10, third, 0, byte(i+1)),
				Bandwidth: 4e6,
				PropDelay: 3 * time.Millisecond,
				JitterMax: 300 * time.Microsecond,
			}
		}
		return specs
	}
	n.ConnectDuplex(clientAddr, wmsAddr, mk(3))
	n.ConnectDuplex(clientAddr, rdtAddr, mk(4))
	return n, c, wms.NewServer(w), rdt.NewServer(r)
}

func TestMediaTrackerRecordsSession(t *testing.T) {
	n, c, wsrv, _ := testbed(t, 51)
	clip, _ := media.FindClip(5, media.WindowsMedia, media.Low)
	wsrv.Register(clip.Name(), clip)
	var final *Report
	StartMediaTracker(c, wsrv, clip.Name(), 4001, 4002, func(r *Report) { final = r })
	n.Run(eventsim.At(clip.Duration.Seconds() + 60))
	if final == nil {
		t.Fatal("tracker never completed")
	}
	if !final.Completed || final.Tool != "MediaTracker" || final.Protocol != "UDP" {
		t.Fatalf("report: %+v", final)
	}
	if final.EncodedKbps() != 39.0 {
		t.Fatalf("encoded=%v", final.EncodedKbps())
	}
	if math.Abs(final.AvgFPS-13) > 1 {
		t.Fatalf("avg fps=%v, want ~13", final.AvgFPS)
	}
	// Application bandwidth should track the encoding rate (CBR).
	if final.AvgPlaybackBps < 0.85*final.EncodedBps || final.AvgPlaybackBps > 1.3*final.EncodedBps {
		t.Fatalf("avg playback=%v vs encoded=%v", final.AvgPlaybackBps, final.EncodedBps)
	}
	if len(final.OSPackets) == 0 || len(final.AppPackets) == 0 {
		t.Fatal("packet arrival logs empty")
	}
	if final.StartupDelay() < 4*time.Second {
		t.Fatalf("startup=%v, want >= ~5 s for WMP", final.StartupDelay())
	}
	if final.String() == "" {
		t.Fatal("String")
	}
}

func TestRealTrackerRecordsSession(t *testing.T) {
	n, c, _, rsrv := testbed(t, 52)
	clip, _ := media.FindClip(5, media.Real, media.Low)
	rsrv.Register(clip.Name(), clip)
	var final *Report
	StartRealTracker(c, rsrv, clip.Name(), 5001, 5002, func(r *Report) { final = r })
	n.Run(eventsim.At(clip.Duration.Seconds() + 90))
	if final == nil {
		t.Fatal("tracker never completed")
	}
	if final.Tool != "RealTracker" || !final.Completed {
		t.Fatalf("report: %+v", final)
	}
	if final.EncodedKbps() != 22.0 {
		t.Fatalf("encoded=%v", final.EncodedKbps())
	}
	if math.Abs(final.AvgFPS-19) > 1.5 {
		t.Fatalf("avg fps=%v, want ~19", final.AvgFPS)
	}
	// Real's average playback bandwidth exceeds its encoding rate.
	if final.AvgPlaybackBps <= final.EncodedBps {
		t.Fatalf("avg playback %v <= encoded %v", final.AvgPlaybackBps, final.EncodedBps)
	}
	// RealTracker gathers no application packets (paper §3.G).
	if len(final.AppPackets) != 0 {
		t.Fatal("RealTracker should not log application packets")
	}
	if len(final.OSPackets) == 0 {
		t.Fatal("OS packet log empty")
	}
	// Real starts faster than WMP thanks to the buffering burst.
	if final.StartupDelay() > 4*time.Second {
		t.Fatalf("Real startup=%v, want < 4 s", final.StartupDelay())
	}
}

func TestSimultaneousTrackers(t *testing.T) {
	// The paper's core methodology: identical content, both formats,
	// streamed to one client at the same time.
	n, c, wsrv, rsrv := testbed(t, 53)
	set, _ := media.FindSet(5)
	pair := set.Pairs[media.High]
	wsrv.Register(pair.WindowsMedia.Name(), pair.WindowsMedia)
	rsrv.Register(pair.Real.Name(), pair.Real)
	var wr, rr *Report
	StartMediaTracker(c, wsrv, pair.WindowsMedia.Name(), 4001, 4002, func(r *Report) { wr = r })
	StartRealTracker(c, rsrv, pair.Real.Name(), 5001, 5002, func(r *Report) { rr = r })
	n.Run(eventsim.At(set.Duration.Seconds() + 90))
	if wr == nil || rr == nil {
		t.Fatal("trackers incomplete")
	}
	if math.Abs(wr.AvgFPS-25) > 1.5 || math.Abs(rr.AvgFPS-25) > 1.5 {
		t.Fatalf("high-rate fps: wmp=%v real=%v, want ~25", wr.AvgFPS, rr.AvgFPS)
	}
	if wr.LossRate() > 0.02 || rr.LossRate() > 0.02 {
		t.Fatalf("loss under typical conditions: %v %v", wr.LossRate(), rr.LossRate())
	}
}

func TestReportCSV(t *testing.T) {
	n, c, wsrv, _ := testbed(t, 54)
	clip, _ := media.FindClip(3, media.WindowsMedia, media.Low)
	wsrv.Register(clip.Name(), clip)
	var final *Report
	StartMediaTracker(c, wsrv, clip.Name(), 4001, 4002, func(r *Report) { final = r })
	n.Run(eventsim.At(120))
	var sb strings.Builder
	if err := final.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "second,bandwidth_kbps,fps") {
		t.Fatal("CSV header missing")
	}
	if strings.Count(out, "\n") < 30 {
		t.Fatalf("CSV too short:\n%s", out)
	}
}

func TestPlaylistRunsSequentially(t *testing.T) {
	n, c, wsrv, rsrv := testbed(t, 55)
	c1, _ := media.FindClip(3, media.WindowsMedia, media.Low) // 60 s
	c2, _ := media.FindClip(3, media.Real, media.Low)
	wsrv.Register(c1.Name(), c1)
	rsrv.Register(c2.Name(), c2)
	var all []*Report
	pl := NewPlaylist(c, wsrv, rsrv, []PlaylistEntry{
		{ClipRef: c1.Name(), Format: media.WindowsMedia},
		{ClipRef: c2.Name(), Format: media.Real},
	}, func(rs []*Report) { all = rs })
	pl.Start()
	n.Run(eventsim.At(300))
	if all == nil {
		t.Fatal("playlist never completed")
	}
	if len(all) != 2 {
		t.Fatalf("reports=%d", len(all))
	}
	if all[0].Tool != "MediaTracker" || all[1].Tool != "RealTracker" {
		t.Fatalf("tools: %s, %s", all[0].Tool, all[1].Tool)
	}
	// Sequential: the second session started after the first finished.
	if all[1].StartedAt < all[0].FinishedAt {
		t.Fatal("playlist entries overlapped")
	}
	if len(pl.Reports()) != 2 {
		t.Fatal("Reports accessor")
	}
}

func TestPlaylistPanics(t *testing.T) {
	n, c, wsrv, _ := testbed(t, 56)
	_ = n
	pl := NewPlaylist(c, wsrv, nil, []PlaylistEntry{{ClipRef: "x", Format: media.Real}}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("missing server did not panic")
		}
	}()
	pl.Start()
}

func TestPlaylistDoubleStartPanics(t *testing.T) {
	n, c, wsrv, rsrv := testbed(t, 57)
	clip, _ := media.FindClip(3, media.WindowsMedia, media.Low)
	wsrv.Register(clip.Name(), clip)
	pl := NewPlaylist(c, wsrv, rsrv, []PlaylistEntry{{ClipRef: clip.Name(), Format: media.WindowsMedia}}, nil)
	pl.SetGap(time.Second)
	pl.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	pl.Start()
	_ = n
}

func TestFig12InterleavingVisibleInReport(t *testing.T) {
	// Figure 12's signature: OS packets arrive steadily; application
	// packets arrive in once-per-second batches.
	n, c, wsrv, _ := testbed(t, 58)
	clip, _ := media.FindClip(5, media.WindowsMedia, media.High)
	wsrv.Register(clip.Name(), clip)
	var final *Report
	StartMediaTracker(c, wsrv, clip.Name(), 4001, 4002, func(r *Report) { final = r })
	n.Run(eventsim.At(clip.Duration.Seconds() + 60))
	if final == nil {
		t.Fatal("incomplete")
	}
	// Count distinct application delivery instants; far fewer than
	// packets.
	instants := make(map[time.Duration]int)
	for _, a := range final.AppPackets {
		instants[a.At]++
	}
	if len(instants) == 0 {
		t.Fatal("no app deliveries")
	}
	avgBatch := float64(len(final.AppPackets)) / float64(len(instants))
	if avgBatch < 6 {
		t.Fatalf("app batch size=%v, want ~10", avgBatch)
	}
	// OS deliveries are spread out: many more distinct instants.
	osInstants := make(map[time.Duration]bool)
	for _, a := range final.OSPackets {
		osInstants[a.At] = true
	}
	if len(osInstants) < 5*len(instants) {
		t.Fatalf("OS instants %d vs app instants %d", len(osInstants), len(instants))
	}
}

func TestLossRateAndEmptyReport(t *testing.T) {
	r := &Report{}
	if r.LossRate() != 0 || r.StartupDelay() != 0 {
		t.Fatal("empty report accessors")
	}
	r.PacketsReceived, r.PacketsLost = 90, 10
	if r.LossRate() != 0.1 {
		t.Fatalf("loss=%v", r.LossRate())
	}
}
