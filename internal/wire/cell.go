package wire

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"turbulence/internal/core"
)

// EngineVersion names the simulation engine's output generation. It is part
// of every cell digest, so bumping it invalidates the whole result store at
// once: do so whenever a change makes an identical CellSpec produce
// different profiles (the golden digests and identity pins are the tripwire
// — if TestDispatchSmokeGoldenDigest needs a new golden, this needs a
// bump). It is deliberately separate from the wire Version: protocol shape
// changes do not stale simulation results, and vice versa.
const EngineVersion = 1

// CellSpec is the content address of one executed Plan cell: everything
// that determines the cell's Comparison and nothing that does not. Pair,
// effective options (the variant's options after the scenario-axis
// override, scenario by name), seed and engine generation are in; the
// cell's plan Index, variant name and axis positions are out — they are
// labels, so an overlapping superset plan hits on the cells it shares with
// an earlier run even though their Indexes differ.
type CellSpec struct {
	Engine int
	Set    int
	Class  string
	Seed   int64
	Opts   OptionsSpec
}

// optionsSpecOf flattens effective run options to their wire shape,
// scenario by name.
func optionsSpecOf(o core.Options) OptionsSpec {
	os := OptionsSpec{
		WMSUnitCap:        o.WMSUnitCap,
		UncappedBurst:     o.UncappedBurst,
		DisableInterleave: o.DisableInterleave,
		Sequential:        o.Sequential,
		BottleneckBps:     o.BottleneckBps,
		EnableScaling:     o.EnableScaling,
	}
	if o.Scenario != nil {
		os.Scenario = o.Scenario.Name
	}
	return os
}

// CellSpecFrom builds the content address of the cell that streams pair
// under opts with seed. opts must be the cell's *effective* options —
// Plan.OptionsFor(k), not the raw variant options — or two cells that run
// identically under a scenario axis would digest differently.
func CellSpecFrom(pair core.PairKey, opts core.Options, seed int64) CellSpec {
	return CellSpec{
		Engine: EngineVersion,
		Set:    pair.Set,
		Class:  pair.Class.String(),
		Seed:   seed,
		Opts:   optionsSpecOf(opts),
	}
}

// Digest is the cell's content address: the hex sha256 of the spec's JSON
// encoding, the same construction as PlanSpec.Digest (JSON keeps it
// independent of gob's stream-level type bookkeeping).
func (s CellSpec) Digest() string {
	b, err := json.Marshal(s)
	if err != nil {
		// CellSpec is plain data; Marshal cannot fail on it. Guard anyway
		// so a future field keeps the invariant.
		panic("wire: CellSpec not marshalable: " + err.Error())
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// CellSpecs enumerates an unsharded plan's cell addresses in canonical
// order, index-aligned with Plan.Keys() — the lookup table a coordinator
// walks when it consults a result store at carve time. Panics on a sharded
// plan, mirroring PlanSpecOf.
func CellSpecs(p *core.Plan) []CellSpec {
	if p.IsSharded() {
		panic("wire: CellSpecs of a sharded plan")
	}
	keys := p.Keys()
	out := make([]CellSpec, len(keys))
	for i, k := range keys {
		out[i] = CellSpecFrom(k.Pair, p.OptionsFor(k), p.Seed(k))
	}
	return out
}

// RunFromCached builds the wire shape of a cell served from a result store:
// the requesting plan's labels (Index, names, seed) around the stored
// Comparison. Because FromResult also encodes only the Comparison for a
// streamed cell, a cached Run is byte-identical to the Run a fresh
// execution of the same cell would ship.
func RunFromCached(k core.RunKey, seed int64, cmp *core.Comparison) Run {
	r := Run{
		Index: k.Index,
		Set:   k.Pair.Set,
		Class: k.Pair.Class.String(),
		Seed:  seed,
	}
	if k.Scenario != nil {
		r.Scenario = k.Scenario.Name
	}
	r.Variant = k.Variant.Name
	if cmp != nil {
		c := *cmp
		r.Comparison = &c
	}
	return r
}
