package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/netem"
)

// TestPlanSpecRoundTrip pins that a spec reconstructs a canonical-order
// faithful plan — same size, same keys, same seeds — including the cases
// encoders like to collapse: a scenario axis holding only the faithful
// testbed, and variants carrying their own scenario options.
func TestPlanSpecRoundTrip(t *testing.T) {
	dsl, err := netem.Find("dsl")
	if err != nil {
		t.Fatal(err)
	}
	plans := map[string]*core.Plan{
		"default": core.NewPlan(2002),
		"full-axes": core.NewPlan(7).
			ForPairs(core.PairKey{Set: 1, Class: media.Low}, core.PairKey{Set: 6, Class: media.VeryHigh}).
			UnderScenarios(nil, dsl).
			WithVariants(core.Variant{Name: "faithful"}, core.Variant{Name: "nofrag", Opts: core.Options{WMSUnitCap: 1400}}).
			WithSeedPolicy(core.SeedPerCell),
		"faithful-axis": core.NewPlan(7).
			ForPairs(core.PairKey{Set: 1, Class: media.Low}).
			UnderScenarios(nil).
			WithOptions(core.Options{Scenario: dsl}),
		"variant-scenario": core.NewPlan(7).
			ForPairs(core.PairKey{Set: 1, Class: media.Low}).
			WithOptions(core.Options{Scenario: dsl}),
	}
	for name, p := range plans {
		// Cross the gob boundary, exactly as a lease grant does.
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(PlanSpecOf(p)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var spec PlanSpec
		if err := gob.NewDecoder(&buf).Decode(&spec); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := spec.Plan()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantKeys, gotKeys := p.Keys(), got.Keys()
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("%s: %d keys, want %d", name, len(gotKeys), len(wantKeys))
		}
		for i := range wantKeys {
			w, g := wantKeys[i], gotKeys[i]
			if g.Index != w.Index || g.Pair != w.Pair || g.Variant.Name != w.Variant.Name ||
				g.Variant.Opts != w.Variant.Opts || g.Scenario != w.Scenario {
				t.Fatalf("%s: key %d differs: %+v vs %+v", name, i, g, w)
			}
			if got.Seed(g) != p.Seed(w) {
				t.Fatalf("%s: key %d seed differs", name, i)
			}
		}
	}
}

// TestPlanSpecRejects pins loud failures on specs the local library cannot
// honour, and the sharded-plan panic.
func TestPlanSpecRejects(t *testing.T) {
	if _, err := (PlanSpec{Pairs: []PairSpec{{Set: 1, Class: "low"}}, Variants: []VariantSpec{{}},
		ScenarioAxis: true, Scenarios: []string{"no-such-scenario"}}).Plan(); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := (PlanSpec{Pairs: []PairSpec{{Set: 1, Class: "medium-rare"}}, Variants: []VariantSpec{{}}}).Plan(); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := (PlanSpec{Variants: []VariantSpec{{}}}).Plan(); err == nil {
		t.Fatal("empty pair axis accepted")
	}
	if _, err := (PlanSpec{Pairs: []PairSpec{{Set: 1, Class: "low"}}}).Plan(); err == nil {
		t.Fatal("empty variant axis accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PlanSpecOf of a sharded plan did not panic")
		}
	}()
	PlanSpecOf(core.NewPlan(1).Shard(0, 2))
}
