package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/netem"
)

// TestPlanSpecRoundTrip pins that a spec reconstructs a canonical-order
// faithful plan — same size, same keys, same seeds — including the cases
// encoders like to collapse: a scenario axis holding only the faithful
// testbed, and variants carrying their own scenario options.
func TestPlanSpecRoundTrip(t *testing.T) {
	dsl, err := netem.Find("dsl")
	if err != nil {
		t.Fatal(err)
	}
	plans := map[string]*core.Plan{
		"default": core.NewPlan(2002),
		"full-axes": core.NewPlan(7).
			ForPairs(core.PairKey{Set: 1, Class: media.Low}, core.PairKey{Set: 6, Class: media.VeryHigh}).
			UnderScenarios(nil, dsl).
			WithVariants(core.Variant{Name: "faithful"}, core.Variant{Name: "nofrag", Opts: core.Options{WMSUnitCap: 1400}}).
			WithSeedPolicy(core.SeedPerCell),
		"faithful-axis": core.NewPlan(7).
			ForPairs(core.PairKey{Set: 1, Class: media.Low}).
			UnderScenarios(nil).
			WithOptions(core.Options{Scenario: dsl}),
		"variant-scenario": core.NewPlan(7).
			ForPairs(core.PairKey{Set: 1, Class: media.Low}).
			WithOptions(core.Options{Scenario: dsl}),
	}
	for name, p := range plans {
		// Cross the gob boundary, exactly as a lease grant does.
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(PlanSpecOf(p)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var spec PlanSpec
		if err := gob.NewDecoder(&buf).Decode(&spec); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := spec.Plan()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantKeys, gotKeys := p.Keys(), got.Keys()
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("%s: %d keys, want %d", name, len(gotKeys), len(wantKeys))
		}
		for i := range wantKeys {
			w, g := wantKeys[i], gotKeys[i]
			if g.Index != w.Index || g.Pair != w.Pair || g.Variant.Name != w.Variant.Name ||
				g.Variant.Opts != w.Variant.Opts || g.Scenario != w.Scenario {
				t.Fatalf("%s: key %d differs: %+v vs %+v", name, i, g, w)
			}
			if got.Seed(g) != p.Seed(w) {
				t.Fatalf("%s: key %d seed differs", name, i)
			}
		}
	}
}

// TestPlanSpecRejects pins loud failures on specs the local library cannot
// honour, and the sharded-plan panic.
func TestPlanSpecRejects(t *testing.T) {
	if _, err := (PlanSpec{Pairs: []PairSpec{{Set: 1, Class: "low"}}, Variants: []VariantSpec{{}},
		ScenarioAxis: true, Scenarios: []string{"no-such-scenario"}}).Plan(); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := (PlanSpec{Pairs: []PairSpec{{Set: 1, Class: "medium-rare"}}, Variants: []VariantSpec{{}}}).Plan(); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := (PlanSpec{Variants: []VariantSpec{{}}}).Plan(); err == nil {
		t.Fatal("empty pair axis accepted")
	}
	if _, err := (PlanSpec{Pairs: []PairSpec{{Set: 1, Class: "low"}}}).Plan(); err == nil {
		t.Fatal("empty variant axis accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PlanSpecOf of a sharded plan did not panic")
		}
	}()
	PlanSpecOf(core.NewPlan(1).Shard(0, 2))
}

// TestPlanSpecDigest pins the checkpoint journal's refuse-to-mix key: the
// digest is stable across encode/decode round trips of the same plan, and
// any axis change — seed, pairs, scenarios, variants, seed policy — moves
// it. A digest that collapsed two different sweeps would let a resumed
// coordinator silently merge their results.
func TestPlanSpecDigest(t *testing.T) {
	dsl, err := netem.Find("dsl")
	if err != nil {
		t.Fatal(err)
	}
	base := func() *core.Plan {
		return core.NewPlan(7).
			ForPairs(core.PairKey{Set: 1, Class: media.Low}).
			UnderScenarios(nil, dsl)
	}
	want := PlanSpecOf(base()).Digest()
	if want == "" || len(want) != 64 {
		t.Fatalf("digest %q is not hex sha256", want)
	}
	if got := PlanSpecOf(base()).Digest(); got != want {
		t.Fatalf("digest not stable: %s vs %s", got, want)
	}
	// Across the gob boundary, as Resume reads it back from the journal.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(PlanSpecOf(base())); err != nil {
		t.Fatal(err)
	}
	var spec PlanSpec
	if err := gob.NewDecoder(&buf).Decode(&spec); err != nil {
		t.Fatal(err)
	}
	if got := spec.Digest(); got != want {
		t.Fatalf("digest changed across gob round trip: %s vs %s", got, want)
	}
	different := map[string]*core.Plan{
		"seed":      core.NewPlan(8).ForPairs(core.PairKey{Set: 1, Class: media.Low}).UnderScenarios(nil, dsl),
		"pairs":     core.NewPlan(7).ForPairs(core.PairKey{Set: 2, Class: media.Low}).UnderScenarios(nil, dsl),
		"scenarios": core.NewPlan(7).ForPairs(core.PairKey{Set: 1, Class: media.Low}).UnderScenarios(nil),
		"variants":  base().WithVariants(core.Variant{Name: "nofrag", Opts: core.Options{WMSUnitCap: 1400}}),
		"policy":    base().WithSeedPolicy(core.SeedPerCell),
	}
	for name, p := range different {
		if got := PlanSpecOf(p).Digest(); got == want {
			t.Fatalf("%s change did not move the digest", name)
		}
	}
}

// TestRenewRequestRoundTrip pins the renewal envelope across the gob
// boundary, version and all.
func TestRenewRequestRoundTrip(t *testing.T) {
	in := RenewRequest{Version: Version, LeaseID: "lease-cafe-3-shard-5", Worker: "w1"}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out RenewRequest
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed the request: %+v vs %+v", out, in)
	}
}
