package wire

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/netem"
)

// Version is the wire-protocol version stamped on every dispatcher
// envelope. A coordinator and its workers must agree exactly: the protocol
// ships gob-encoded profile structs, so a silent field mismatch would
// corrupt merged results rather than fail loudly. Bump it whenever
// PlanSpec, LeaseGrant, Run or the profile shapes change incompatibly.
//
// Version 2 added the lease-renewal verb (POST /renew, RenewRequest) and
// the coordinator checkpoint journal keyed by PlanSpec.Digest.
//
// Version 3 added CachedCells to LeaseGrant: a coordinator with a result
// store tells the worker which of the shard's cells are already served
// from cache, and the worker must omit exactly those from its batch. An
// old worker would simulate and ship them anyway, tripping the batch
// validator — hence the bump.
const Version = 3

// PairSpec is the wire shape of one clip-pair key. Class travels as the
// Table 1 name ("low", "high", "very-high") so JSON stays readable.
type PairSpec struct {
	Set   int
	Class string
}

// OptionsSpec is the wire shape of core.Options: every ablation field as
// is, plus the netem scenario by name (scenarios carry model factories and
// cannot cross a wire; both ends hold the same library).
type OptionsSpec struct {
	WMSUnitCap        int     `json:",omitempty"`
	UncappedBurst     bool    `json:",omitempty"`
	DisableInterleave bool    `json:",omitempty"`
	Sequential        bool    `json:",omitempty"`
	BottleneckBps     float64 `json:",omitempty"`
	EnableScaling     bool    `json:",omitempty"`
	Scenario          string  `json:",omitempty"` // "" = faithful testbed
}

// VariantSpec is the wire shape of one ablation-axis point.
type VariantSpec struct {
	Name string `json:",omitempty"`
	Opts OptionsSpec
}

// PlanSpec is the wire shape of an unsharded core.Plan: the run-space axes
// with scenarios by name, resolved to their defaults so the spec survives
// encoders that collapse empty and nil slices (gob does). A worker
// reconstructs the plan with Plan and shards it locally from its lease
// grant, so PlanSpec never carries shard coordinates.
type PlanSpec struct {
	BaseSeed int64
	// Pairs is the resolved pair axis (never empty).
	Pairs []PairSpec
	// ScenarioAxis records whether the plan declared a scenario axis: an
	// axis containing only the faithful testbed is not the same plan as no
	// axis at all (a declared axis overrides each variant's own scenario).
	ScenarioAxis bool
	// Scenarios is the scenario axis by name, "" = faithful testbed.
	// Meaningful only when ScenarioAxis is set.
	Scenarios []string `json:",omitempty"`
	// Variants is the resolved ablation axis (never empty).
	Variants []VariantSpec
	// SeedPolicy is the plan's core.SeedPolicy.
	SeedPolicy int
}

// PlanSpecOf flattens an unsharded plan to its wire shape. Panics on a
// sharded plan — shard coordinates travel in the lease grant, not the
// spec — mirroring Plan.Shard's own contract.
func PlanSpecOf(p *core.Plan) PlanSpec {
	if p.IsSharded() {
		panic("wire: PlanSpecOf of a sharded plan")
	}
	spec := PlanSpec{BaseSeed: p.BaseSeed, SeedPolicy: int(p.Seeds)}
	pairs := p.Pairs
	if pairs == nil {
		pairs = core.AllPairs()
	}
	for _, k := range pairs {
		spec.Pairs = append(spec.Pairs, PairSpec{Set: k.Set, Class: k.Class.String()})
	}
	if len(p.Scenarios) > 0 {
		spec.ScenarioAxis = true
		for _, sc := range p.Scenarios {
			name := ""
			if sc != nil {
				name = sc.Name
			}
			spec.Scenarios = append(spec.Scenarios, name)
		}
	}
	variants := p.Variants
	if len(variants) == 0 {
		variants = []core.Variant{{}}
	}
	for _, v := range variants {
		spec.Variants = append(spec.Variants, VariantSpec{Name: v.Name, Opts: optionsSpecOf(v.Opts)})
	}
	return spec
}

// Plan reconstructs the core.Plan a spec describes, resolving scenario
// names against the local library. The reconstruction is canonical-order
// faithful: Keys, Index and Seed of every cell equal the original plan's,
// which is what lets a worker execute a shard of a plan it never held.
func (s PlanSpec) Plan() (*core.Plan, error) {
	p := core.NewPlan(s.BaseSeed).WithSeedPolicy(core.SeedPolicy(s.SeedPolicy))
	if len(s.Pairs) == 0 {
		return nil, fmt.Errorf("wire: plan spec with no pairs")
	}
	var pairs []core.PairKey
	for _, ps := range s.Pairs {
		class, ok := media.ParseClass(ps.Class)
		if !ok {
			return nil, fmt.Errorf("wire: plan spec has unknown class %q", ps.Class)
		}
		pairs = append(pairs, core.PairKey{Set: ps.Set, Class: class})
	}
	p.ForPairs(pairs...)
	if s.ScenarioAxis {
		var scs []*netem.Scenario
		for _, name := range s.Scenarios {
			if name == "" {
				scs = append(scs, nil)
				continue
			}
			sc, err := netem.Find(name)
			if err != nil {
				return nil, fmt.Errorf("wire: plan spec: %w", err)
			}
			scs = append(scs, sc)
		}
		p.UnderScenarios(scs...)
	}
	if len(s.Variants) == 0 {
		return nil, fmt.Errorf("wire: plan spec with no variants")
	}
	var variants []core.Variant
	for _, vs := range s.Variants {
		v := core.Variant{Name: vs.Name, Opts: core.Options{
			WMSUnitCap:        vs.Opts.WMSUnitCap,
			UncappedBurst:     vs.Opts.UncappedBurst,
			DisableInterleave: vs.Opts.DisableInterleave,
			Sequential:        vs.Opts.Sequential,
			BottleneckBps:     vs.Opts.BottleneckBps,
			EnableScaling:     vs.Opts.EnableScaling,
		}}
		if vs.Opts.Scenario != "" {
			sc, err := netem.Find(vs.Opts.Scenario)
			if err != nil {
				return nil, fmt.Errorf("wire: plan spec: %w", err)
			}
			v.Opts.Scenario = sc
		}
		variants = append(variants, v)
	}
	p.WithVariants(variants...)
	return p, nil
}

// Digest is the plan spec's content address: the hex sha256 of its JSON
// encoding. The checkpoint journal stamps it in its header so a resumed
// coordinator refuses to replay completions that belong to a different
// sweep (different seed, pairs, scenarios or variants) instead of
// silently mixing them. JSON rather than gob keeps the digest independent
// of gob's stream-level type bookkeeping.
func (s PlanSpec) Digest() string {
	b, err := json.Marshal(s)
	if err != nil {
		// PlanSpec is plain data (ints, strings, slices); Marshal cannot
		// fail on it. Guard anyway so a future field keeps the invariant.
		panic("wire: PlanSpec not marshalable: " + err.Error())
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// LeaseRequest is a worker's pull: "give me a shard". Worker is a
// free-form identity used in coordinator status and logs.
type LeaseRequest struct {
	Version int
	Worker  string
}

// RenewRequest is a worker's heartbeat for a lease it is still executing:
// "extend my claim, the shard is slow but alive". The coordinator answers
// with an Ack — OK pushes the deadline out one TTL; a rejection means the
// lease is gone (expired and reissued, completed by someone else, or from
// a dead coordinator epoch) and the worker must abort the now-orphaned
// shard instead of shipping a late duplicate.
type RenewRequest struct {
	Version int
	LeaseID string
	Worker  string
}

// LeaseGrant is the coordinator's reply to a lease request. Exactly one of
// the three shapes applies: a work grant (LeaseID != ""), a wait hint
// (Wait set: nothing leasable right now, poll again after RetryMillis), or
// the drain signal (Done set: the sweep is complete or draining, exit).
type LeaseGrant struct {
	Version int

	// LeaseID names the lease for the matching Complete. "" when Wait or
	// Done is set.
	LeaseID string `json:",omitempty"`
	// Shard/Shards are the strided slice to run: Plan().Shard(Shard, Shards).
	Shard  int `json:",omitempty"`
	Shards int `json:",omitempty"`
	// Plan is the full unsharded run space the shard slices.
	Plan PlanSpec
	// TTLMillis is how long the coordinator holds the lease before
	// assuming the worker died and re-issuing the shard.
	TTLMillis int64 `json:",omitempty"`

	// CachedCells lists the global plan Indexes inside this lease's slice
	// that the coordinator already holds results for (from its result
	// store). The worker must skip them — Plan.Omitting — and ship a batch
	// covering only the remaining cells; the coordinator merges the cached
	// results back in canonical order.
	CachedCells []int `json:",omitempty"`

	Wait        bool  `json:",omitempty"`
	RetryMillis int64 `json:",omitempty"`

	Done bool `json:",omitempty"`
}

// Ack is the coordinator's reply to a Complete: accepted, or an error the
// worker should not retry (version mismatch, unknown lease).
type Ack struct {
	Version int
	OK      bool
	Err     string `json:",omitempty"`
}

// StatsVersion is the WorkerStats snapshot's own version, independent of
// the envelope Version: the snapshot rides an optional HTTP header that
// old coordinators never read and old workers never send, so evolving it
// must not force a protocol bump. A coordinator ignores snapshots whose
// version it does not know.
const StatsVersion = 1

// WorkerStats is a worker's self-measurement for one completed shard,
// shipped alongside the completion batch (as the X-Turbulence-Worker-Stats
// header, JSON-encoded — small, optional, and invisible to coordinators
// that predate it). It is what lets the coordinator report per-worker
// throughput as measured on the worker rather than inferred from
// completion timestamps, which lease retries and queue waits distort.
type WorkerStats struct {
	Version   int    // StatsVersion of the sender
	Worker    string `json:",omitempty"` // worker name, as in lease requests
	Shard     int    // shard the batch completes
	Cells     int    // cells executed (len of the shipped batch)
	RunMillis int64  // wall-clock spent executing the shard's cells
	Renewals  int    `json:",omitempty"` // successful lease renewals while running
	Retries   uint64 `json:",omitempty"` // HTTP transport retries observed while running

	// Testbed-economy measurements for the shard (see core.SweepStats).
	// Added fields, not a version bump: JSON decoding ignores them on old
	// coordinators and zeroes them from old workers.
	TestbedsBuilt  int `json:",omitempty"` // testbeds constructed from scratch
	TestbedsReused int `json:",omitempty"` // cells served by resetting a cached testbed
	WheelPeak      int `json:",omitempty"` // high-water timing-wheel bucket occupancy
}
