// Package wire gives Plan/Runner results a transport encoding, closing the
// distributed-matrix loop: a shard process runs its slice of a Plan under
// StreamProfiles, encodes the per-cell profiles (gob for Go collectors,
// JSON for everything else), ships them home, and the collector merges the
// batches back into canonical plan order. Traces never ride along — the
// wire shape is the cell's identity, seed and turbulence profiles, which
// is exactly what the streaming retention produces.
package wire

import (
	"encoding/gob"
	"encoding/json"
	"io"
	"sort"

	"turbulence/internal/core"
)

// Run is the wire shape of one executed Plan cell.
type Run struct {
	// Index is the cell's position in the unsharded plan's canonical
	// order; Merge sorts on it, exactly as core.MergeRuns does for
	// in-process results.
	Index int

	Set      int
	Class    string
	Scenario string `json:",omitempty"` // "" = faithful testbed
	Variant  string `json:",omitempty"`
	Seed     int64

	// Comparison carries both flows' turbulence profiles. Nil only when
	// the cell failed.
	Comparison *core.Comparison `json:",omitempty"`

	// Err is the cell's error text ("" = success).
	Err string `json:",omitempty"`
}

// FromResult flattens one executed cell. Profiles come from the result's
// Comparison (DropTracesAfterProfile and StreamProfiles fill it); under
// RetainTraces they are computed here from the retained flows.
func FromResult(res core.RunResult) Run {
	r := Run{
		Index: res.Key.Index,
		Set:   res.Key.Pair.Set,
		Class: res.Key.Pair.Class.String(),
		Seed:  res.Seed,
	}
	if res.Key.Scenario != nil {
		r.Scenario = res.Key.Scenario.Name
	}
	r.Variant = res.Key.Variant.Name
	if res.Err != nil {
		r.Err = res.Err.Error()
		return r
	}
	if res.Comparison != nil {
		c := *res.Comparison
		r.Comparison = &c
	} else if res.Run != nil && res.Run.WMPFlow != nil && res.Run.RealFlow != nil {
		c := core.Compare(res.Run)
		r.Comparison = &c
	}
	return r
}

// FromResults flattens a batch, preserving order.
func FromResults(results []core.RunResult) []Run {
	out := make([]Run, len(results))
	for i, res := range results {
		out[i] = FromResult(res)
	}
	return out
}

// Merge recombines result batches from shards of one Plan into canonical
// plan order — the wire-side mirror of core.MergeRuns. Inputs may arrive
// in any order; the merge is a stable sort on each cell's global Index.
func Merge(batches ...[]Run) []Run {
	var out []Run
	for _, b := range batches {
		out = append(out, b...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// WriteJSON encodes a batch as one JSON array.
func WriteJSON(w io.Writer, runs []Run) error {
	enc := json.NewEncoder(w)
	return enc.Encode(runs)
}

// ReadJSON decodes one JSON batch.
func ReadJSON(r io.Reader) ([]Run, error) {
	var out []Run
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteGob encodes a batch in gob — the compact choice between Go
// processes.
func WriteGob(w io.Writer, runs []Run) error {
	return gob.NewEncoder(w).Encode(runs)
}

// ReadGob decodes one gob batch.
func ReadGob(r io.Reader) ([]Run, error) {
	var out []Run
	if err := gob.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
