package wire

import (
	"bytes"
	"testing"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/netem"
)

// streamedResults runs a small sharded plan in the streaming retention —
// the intended producer of wire batches.
func streamedResults(t *testing.T, shard, shards int) []core.RunResult {
	t.Helper()
	sc, err := netem.Find("dsl")
	if err != nil {
		t.Fatal(err)
	}
	plan := core.NewPlan(7).
		ForPairs(core.PairKey{Set: 1, Class: media.Low}, core.PairKey{Set: 3, Class: media.Low}).
		UnderScenarios(nil, sc)
	if shards > 1 {
		plan = plan.Shard(shard, shards)
	}
	results, err := core.NewRunner(
		core.WithWorkers(0),
		core.WithTraceRetention(core.StreamProfiles),
	).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestRoundTripBothEncodings pins that gob and JSON both reproduce a batch
// exactly, profiles included.
func TestRoundTripBothEncodings(t *testing.T) {
	runs := FromResults(streamedResults(t, 0, 1))
	if len(runs) != 4 {
		t.Fatalf("%d runs, want 4", len(runs))
	}
	for _, r := range runs {
		if r.Comparison == nil || r.Err != "" {
			t.Fatalf("run %+v missing profiles", r)
		}
		if r.Comparison.WMP.Packets == 0 || r.Comparison.Real.Packets == 0 {
			t.Fatalf("run %d: empty profiles", r.Index)
		}
	}
	if runs[2].Scenario != "dsl" || runs[0].Scenario != "" {
		t.Fatalf("scenario labels: %q / %q", runs[0].Scenario, runs[2].Scenario)
	}

	var gobBuf, jsonBuf bytes.Buffer
	if err := WriteGob(&gobBuf, runs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jsonBuf, runs); err != nil {
		t.Fatal(err)
	}
	fromGob, err := ReadGob(&gobBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadJSON(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range runs {
		if *fromGob[i].Comparison != *runs[i].Comparison || fromGob[i].Index != runs[i].Index {
			t.Fatalf("gob round trip diverged at %d", i)
		}
		if *fromJSON[i].Comparison != *runs[i].Comparison || fromJSON[i].Class != runs[i].Class {
			t.Fatalf("json round trip diverged at %d", i)
		}
	}
}

// TestShardShipMerge is the distributed loop end to end: every shard runs
// its slice, encodes, ships (a buffer here), and the collector's Merge
// reproduces the unsharded batch exactly.
func TestShardShipMerge(t *testing.T) {
	whole := FromResults(streamedResults(t, 0, 1))
	const shards = 3
	var batches [][]Run
	for i := 0; i < shards; i++ {
		var buf bytes.Buffer
		if err := WriteGob(&buf, FromResults(streamedResults(t, i, shards))); err != nil {
			t.Fatal(err)
		}
		got, err := ReadGob(&buf)
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, got)
	}
	merged := Merge(batches...)
	if len(merged) != len(whole) {
		t.Fatalf("merged %d runs, want %d", len(merged), len(whole))
	}
	for i := range whole {
		a, b := merged[i], whole[i]
		if a.Index != b.Index || a.Set != b.Set || a.Class != b.Class ||
			a.Scenario != b.Scenario || a.Seed != b.Seed || *a.Comparison != *b.Comparison {
			t.Fatalf("cell %d: merged shard output differs from unsharded run\n%+v\n%+v", i, a, b)
		}
	}
}

// TestFromResultRetained pins that retained-trace results profile on the
// way out, and errors carry their text.
func TestFromResultRetained(t *testing.T) {
	results, err := core.NewRunner().Run(core.NewPlan(7).ForPairs(core.PairKey{Set: 1, Class: media.Low}))
	if err != nil {
		t.Fatal(err)
	}
	r := FromResult(results[0])
	if r.Comparison == nil {
		t.Fatal("retained run produced no profiles")
	}
	want := core.Compare(results[0].Run)
	if *r.Comparison != want {
		t.Fatal("wire profiles differ from Compare on the retained run")
	}
	bad, _ := core.NewRunner().Run(core.NewPlan(7).ForPairs(core.PairKey{Set: 99, Class: media.Low}))
	if len(bad) != 1 {
		t.Fatalf("expected the failed cell, got %d", len(bad))
	}
	if r := FromResult(bad[0]); r.Err == "" || r.Comparison != nil {
		t.Fatalf("failed cell encodes as %+v", r)
	}
}
