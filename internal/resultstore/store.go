// Package resultstore is a content-addressed, append-only on-disk cache of
// completed sweep-cell results — the memo table that makes re-running an
// overlapping Plan simulate only the new cells.
//
// Each entry is one cell's Comparison keyed by the cell's digest
// (wire.CellSpec: pair × effective options × seed × engine generation —
// sha256 over the canonical wire spec, derived exactly like
// PlanSpec.Digest). Labels — plan Index, variant name — are *not* part of
// the key, so a superset plan hits on every cell it shares with an earlier
// run. Bumping wire.EngineVersion changes every digest at once, which is
// the whole invalidation story: stale results are never *served*, they are
// merely unreachable bytes in the file.
//
// The file reuses the dispatch journal's torn-tail discipline with one
// addition: every frame carries a CRC32 of its body, and any frame that
// fails the checksum — or tears at the tail — is a cache miss, never data.
// A bad frame stops the scan; the file is truncated back to the last whole
// frame so appends never land behind garbage. Unlike the journal there is
// no fsync per append: losing the tail of a cache on power cut costs a few
// re-simulations, not correctness.
package resultstore

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"turbulence/internal/core"
	"turbulence/internal/obs"
	"turbulence/internal/wire"
)

// storeMagic guards against pointing -result-store at an arbitrary
// directory whose results.store is some other file.
const storeMagic = "turbulence-resultstore"

// storeFile is the single append-only file inside the store directory.
const storeFile = "results.store"

// storeFrame is the one frame shape; exactly one field is set.
type storeFrame struct {
	Header *storeHeader
	Entry  *storeEntry
}

// storeHeader is the first frame: which result generation this store
// holds. Wire guards the gob shape of Comparison (it changes only with
// protocol bumps); Engine guards the simulation's output generation. A
// mismatch on either refuses the whole file loudly — foreign results must
// never be served as this build's.
type storeHeader struct {
	Magic  string
	Wire   int
	Engine int
}

// storeEntry is one cached cell.
type storeEntry struct {
	Digest     string
	Comparison core.Comparison
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Hits          uint64 // lookups served from the store
	Misses        uint64 // lookups that found nothing
	Bytes         uint64 // bytes of whole frames persisted (header included)
	CorruptFrames uint64 // frames dropped at open (bad CRC or torn tail)
	Entries       int    // distinct results currently held
}

// Store is the open handle: an in-memory digest→Comparison index over an
// append-only file. Safe for concurrent use from any number of Runner
// workers and coordinator goroutines.
type Store struct {
	mu      sync.RWMutex
	entries map[string]*core.Comparison
	f       *os.File
	dead    bool // a failed append stops persisting; lookups still work
	logf    func(format string, args ...any)

	hits    atomic.Uint64
	misses  atomic.Uint64
	bytes   atomic.Uint64
	corrupt atomic.Uint64
}

// Option configures Open.
type Option func(*Store)

// WithLogf routes the store's rare diagnostics (corruption at open, a
// failed append) to fn instead of discarding them.
func WithLogf(fn func(format string, args ...any)) Option {
	return func(s *Store) { s.logf = fn }
}

// Open opens (creating if needed) the result store in dir. A file written
// by a different wire or engine generation is refused with an error — point
// different generations at different directories. Corrupt tail frames are
// counted, logged, truncated away and otherwise treated as misses.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		entries: make(map[string]*core.Comparison),
		logf:    func(string, ...any) {},
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	path := filepath.Join(dir, storeFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s.f = f
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	if info.Size() == 0 {
		h := storeHeader{Magic: storeMagic, Wire: wire.Version, Engine: wire.EngineVersion}
		n, err := writeFrame(f, storeFrame{Header: &h})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("resultstore: cannot write store header to %s: %w", path, err)
		}
		// One fsync for the header: losing it renders the whole file
		// foreign at the next open. Entry appends are not fsync'd.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("resultstore: %w", err)
		}
		s.bytes.Store(uint64(n))
		return s, nil
	}
	end, err := s.load(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Cut any tear or corrupt tail so appends land behind the last whole
	// frame, never behind garbage the next scan would misread.
	if end != info.Size() {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("resultstore: cannot trim %s to its last whole frame: %w", path, err)
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s.bytes.Store(uint64(end))
	return s, nil
}

// load scans the file from the start, verifying the header and indexing
// every whole, checksum-clean entry frame. Returns the offset just past
// the last good frame. A header that does not verify is an error; a bad
// entry frame is a miss — counted, logged, and the scan stops there.
func (s *Store) load(path string) (int64, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("resultstore: %w", err)
	}
	cr := &countingReader{r: s.f}
	first, err := readFrame(cr)
	if err != nil {
		return 0, fmt.Errorf("resultstore: %s: unreadable header: %v", path, err)
	}
	h := first.Header
	if h == nil || h.Magic != storeMagic {
		return 0, fmt.Errorf("resultstore: %s is not a turbulence result store", path)
	}
	if h.Wire != wire.Version || h.Engine != wire.EngineVersion {
		return 0, fmt.Errorf("resultstore: %s holds results from wire v%d / engine v%d; this build produces wire v%d / engine v%d — use a fresh directory",
			path, h.Wire, h.Engine, wire.Version, wire.EngineVersion)
	}
	end := cr.n
	for {
		fr, err := readFrame(cr)
		if err == io.EOF {
			return end, nil
		}
		if err != nil {
			// Torn tail or failed checksum: a miss, never data. Everything
			// before it is good; the caller truncates the rest away.
			s.corrupt.Add(1)
			s.logf("resultstore: dropping corrupt tail of %s (%v); cells re-simulate", path, err)
			return end, nil
		}
		if fr.Entry == nil {
			s.corrupt.Add(1)
			s.logf("resultstore: dropping unexpected non-entry frame in %s; cells re-simulate", path)
			return end, nil
		}
		cmp := fr.Entry.Comparison
		s.entries[fr.Entry.Digest] = &cmp
		end = cr.n
	}
}

// Close closes the file. Lookups after Close still serve the in-memory
// index; inserts stop persisting.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dead = true
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Lookup returns the stored Comparison for a cell digest. The returned
// pointer is shared — callers must not mutate it (wire.RunFromCached
// copies).
func (s *Store) Lookup(digest string) (*core.Comparison, bool) {
	s.mu.RLock()
	cmp, ok := s.entries[digest]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return cmp, ok
}

// Contains reports whether a digest is held without touching the hit/miss
// counters — for planners that probe coverage before deciding what to
// lease.
func (s *Store) Contains(digest string) bool {
	s.mu.RLock()
	_, ok := s.entries[digest]
	s.mu.RUnlock()
	return ok
}

// Insert records a cell result under its digest: first writer wins,
// re-inserts of a held digest are free no-ops (results are content-
// addressed, so a second writer's value is the same result). The
// Comparison is copied in, decoupling the store from later caller
// mutation. A failed append disables persistence for the rest of the
// process — the in-memory index keeps working — because the file may now
// end in a torn frame that must stay the *last* thing in it.
func (s *Store) Insert(digest string, cmp *core.Comparison) {
	if cmp == nil {
		return
	}
	c := *cmp
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[digest]; dup {
		return
	}
	s.entries[digest] = &c
	if s.dead || s.f == nil {
		return
	}
	n, err := writeFrame(s.f, storeFrame{Entry: &storeEntry{Digest: digest, Comparison: c}})
	if err != nil {
		s.dead = true
		s.logf("resultstore: append failed, persistence disabled for this run: %v", err)
		return
	}
	s.bytes.Add(uint64(n))
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	n := len(s.entries)
	s.mu.RUnlock()
	return Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Bytes:         s.bytes.Load(),
		CorruptFrames: s.corrupt.Load(),
		Entries:       n,
	}
}

// Register exposes the store's counters on a metrics registry:
// turbulence_cache_{hits,misses,bytes,corrupt_frames}_total plus the
// turbulence_cache_entries gauge. Call at most once per registry.
func (s *Store) Register(reg *obs.Registry) {
	reg.CounterFunc("turbulence_cache_hits_total",
		"Result-store lookups served from cache.", s.hits.Load)
	reg.CounterFunc("turbulence_cache_misses_total",
		"Result-store lookups that found nothing.", s.misses.Load)
	reg.CounterFunc("turbulence_cache_bytes_total",
		"Bytes of whole frames persisted in the result store.", s.bytes.Load)
	reg.CounterFunc("turbulence_cache_corrupt_frames_total",
		"Result-store frames dropped as corrupt at open.", s.corrupt.Load)
	reg.GaugeFunc("turbulence_cache_entries",
		"Distinct cell results held by the result store.", func() float64 {
			s.mu.RLock()
			n := len(s.entries)
			s.mu.RUnlock()
			return float64(n)
		})
}

// LookupResult implements core.ResultStore: the Runner's read path,
// addressing by the cell's content (pair, effective options, seed, engine
// generation).
func (s *Store) LookupResult(pair core.PairKey, opts core.Options, seed int64) (*core.Comparison, bool) {
	return s.Lookup(wire.CellSpecFrom(pair, opts, seed).Digest())
}

// InsertResult implements core.ResultStore: the Runner's write path.
func (s *Store) InsertResult(pair core.PairKey, opts core.Options, seed int64, cmp *core.Comparison) {
	s.Insert(wire.CellSpecFrom(pair, opts, seed).Digest(), cmp)
}

var _ core.ResultStore = (*Store)(nil)

// Frame format: [uint32 body length][uint32 CRC32-IEEE of body][gob body].
// Each frame is an independent gob stream (appends from successive
// processes never share encoder state), and the checksum is what lets a
// *middle-of-file* bit flip read as "cache miss" instead of decoding to
// plausible garbage — gob alone would happily decode many single-bit
// corruptions.

// errBadFrame covers both tears and checksum failures: for a cache the
// distinction does not matter, the frame is simply not data.
var errBadFrame = errors.New("bad frame")

func writeFrame(w io.Writer, fr storeFrame) (int, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(fr); err != nil {
		return 0, err
	}
	var pre [8]byte
	binary.BigEndian.PutUint32(pre[:4], uint32(body.Len()))
	binary.BigEndian.PutUint32(pre[4:], crc32.ChecksumIEEE(body.Bytes()))
	if _, err := w.Write(pre[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return 0, err
	}
	return len(pre) + body.Len(), nil
}

// readFrame decodes the next frame. io.EOF = clean end; errBadFrame = the
// file ends inside a frame, the checksum fails, or the body does not
// decode.
func readFrame(r io.Reader) (storeFrame, error) {
	var fr storeFrame
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF {
			return fr, io.EOF
		}
		return fr, fmt.Errorf("%w: torn length prefix", errBadFrame)
	}
	body := make([]byte, binary.BigEndian.Uint32(pre[:4]))
	if _, err := io.ReadFull(r, body); err != nil {
		return fr, fmt.Errorf("%w: torn body", errBadFrame)
	}
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(pre[4:]) {
		return fr, fmt.Errorf("%w: checksum mismatch", errBadFrame)
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&fr); err != nil {
		return fr, fmt.Errorf("%w: %v", errBadFrame, err)
	}
	return fr, nil
}

// countingReader tracks consumed bytes so load can report where the last
// whole frame ends.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}
