package resultstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/netem"
	"turbulence/internal/obs"
	"turbulence/internal/wire"
)

func cmpFor(i int) *core.Comparison {
	return &core.Comparison{
		Set:       i,
		ClassName: "low",
		Real:      core.FlowProfile{Packets: i, MeanSize: float64(i) * 1.5},
		WMP:       core.FlowProfile{Packets: i * 2, CBR: true},
	}
}

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if _, ok := s.Lookup("d0"); ok {
		t.Fatal("empty store reported a hit")
	}
	for i := 0; i < 5; i++ {
		s.Insert("d"+strconv.Itoa(i), cmpFor(i))
	}
	s.Insert("d3", cmpFor(99)) // re-insert: first writer wins
	got, ok := s.Lookup("d3")
	if !ok || got.Set != 3 {
		t.Fatalf("Lookup(d3) = %+v, %v; want first-inserted value", got, ok)
	}
	st := s.Stats()
	if st.Entries != 5 || st.Hits != 1 || st.Misses != 1 || st.CorruptFrames != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything persisted, cleanly.
	s2 := open(t, dir)
	defer s2.Close()
	for i := 0; i < 5; i++ {
		got, ok := s2.Lookup("d" + strconv.Itoa(i))
		if !ok || got.Set != i {
			t.Fatalf("after reopen, Lookup(d%d) = %+v, %v", i, got, ok)
		}
	}
	if st := s2.Stats(); st.Entries != 5 || st.CorruptFrames != 0 || st.Bytes == 0 {
		t.Fatalf("reopen stats = %+v", st)
	}

	// The counters render as real counters on a registry.
	reg := obs.NewRegistry()
	s2.Register(reg)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE turbulence_cache_hits_total counter\nturbulence_cache_hits_total 5\n",
		"turbulence_cache_misses_total 0\n",
		"turbulence_cache_corrupt_frames_total 0\n",
		"turbulence_cache_entries 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestStoreConcurrent hammers insert and lookup from many goroutines —
// meaningful under -race.
func TestStoreConcurrent(t *testing.T) {
	s := open(t, t.TempDir())
	defer s.Close()
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := "d" + strconv.Itoa(i) // all workers contend on the same digests
				s.Insert(d, cmpFor(i))
				if got, ok := s.Lookup(d); !ok || got.Set != i {
					t.Errorf("Lookup(%s) = %+v, %v", d, got, ok)
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries != perWorker {
		t.Fatalf("entries = %d, want %d", st.Entries, perWorker)
	}
}

// TestStoreTornTailReopen simulates a crash mid-append: the torn frame is
// dropped and counted, everything before it survives, and the store keeps
// appending cleanly from the cut.
func TestStoreTornTailReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for i := 0; i < 3; i++ {
		s.Insert("d"+strconv.Itoa(i), cmpFor(i))
	}
	s.Close()

	path := filepath.Join(dir, storeFile)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	whole := info.Size()
	// Tear: a new frame's worth of bytes, cut mid-body.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, raw[len(raw)-20:]...), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir)
	if st := s2.Stats(); st.Entries != 3 || st.CorruptFrames != 1 {
		t.Fatalf("after torn tail, stats = %+v", st)
	}
	if info, err := os.Stat(path); err != nil || info.Size() != whole {
		t.Fatalf("torn tail not truncated: size %d, want %d (err %v)", info.Size(), whole, err)
	}
	s2.Insert("d9", cmpFor(9))
	s2.Close()

	s3 := open(t, dir)
	defer s3.Close()
	if st := s3.Stats(); st.Entries != 4 || st.CorruptFrames != 0 {
		t.Fatalf("after append-past-tear reopen, stats = %+v", st)
	}
}

// TestStoreCorruptFrameIsMiss flips one byte inside the last frame's body:
// the checksum must catch it and the frame must become a miss — gob alone
// would decode many single-byte corruptions into plausible garbage.
func TestStoreCorruptFrameIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Insert("keep", cmpFor(1))
	s.Insert("flip", cmpFor(2))
	s.Close()

	path := filepath.Join(dir, storeFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir)
	defer s2.Close()
	if _, ok := s2.Lookup("keep"); !ok {
		t.Fatal("frame before the corruption was lost")
	}
	if _, ok := s2.Lookup("flip"); ok {
		t.Fatal("corrupt frame served as data")
	}
	if st := s2.Stats(); st.CorruptFrames != 1 {
		t.Fatalf("corrupt frames = %d, want 1", st.CorruptFrames)
	}
}

// TestStoreForeignRefusal pins the refuse-loudly cases: a file written by
// a different engine generation, a different wire version, or not a
// result store at all.
func TestStoreForeignRefusal(t *testing.T) {
	writeHeader := func(t *testing.T, h storeHeader) string {
		t.Helper()
		dir := t.TempDir()
		f, err := os.Create(filepath.Join(dir, storeFile))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := writeFrame(f, storeFrame{Header: &h}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return dir
	}

	cases := []struct {
		name string
		h    storeHeader
	}{
		{"foreign engine", storeHeader{Magic: storeMagic, Wire: wire.Version, Engine: wire.EngineVersion + 1}},
		{"foreign wire", storeHeader{Magic: storeMagic, Wire: wire.Version + 1, Engine: wire.EngineVersion}},
		{"wrong magic", storeHeader{Magic: "something-else", Wire: wire.Version, Engine: wire.EngineVersion}},
	}
	for _, tc := range cases {
		if _, err := Open(writeHeader(t, tc.h)); err == nil {
			t.Errorf("%s: Open accepted a foreign store", tc.name)
		}
	}

	// Not a frame file at all.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, storeFile), []byte("hello world, not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("Open accepted an arbitrary file")
	}
}

// smokePlan is the dispatch-smoke plan (seed 7, 4 pairs, dsl) — reusing it
// here keeps the in-process cache pin and the CI cache-smoke job on the
// same cells.
func smokePlan(t *testing.T) *core.Plan {
	t.Helper()
	dsl, err := netem.Find("dsl")
	if err != nil {
		t.Fatal(err)
	}
	return core.NewPlan(7).
		ForPairs(
			core.PairKey{Set: 1, Class: media.Low},
			core.PairKey{Set: 3, Class: media.Low},
			core.PairKey{Set: 2, Class: media.High},
			core.PairKey{Set: 5, Class: media.High},
		).
		UnderScenarios(dsl)
}

func wireBytes(t *testing.T, results []core.RunResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.WriteGob(&buf, wire.FromResults(results)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCachedSweepMatchesFresh is the acceptance pin: a warm rerun of an
// identical plan simulates zero cells yet merges byte-identical wire
// output to a fresh run, at every worker-pool shape.
func TestCachedSweepMatchesFresh(t *testing.T) {
	plan := smokePlan(t)
	fresh, err := core.NewRunner(
		core.WithWorkers(0),
		core.WithTraceRetention(core.StreamProfiles),
	).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	want := wireBytes(t, fresh)

	s := open(t, t.TempDir())
	defer s.Close()

	// Cold run populates the store — and must already match fresh bytes.
	cold, err := core.NewRunner(
		core.WithWorkers(1),
		core.WithTraceRetention(core.StreamProfiles),
		core.WithResultStore(s),
	).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wireBytes(t, cold), want) {
		t.Fatal("cold run through the store differs from a storeless run")
	}
	if st := s.Stats(); st.Entries != plan.Size() || st.Misses != uint64(plan.Size()) {
		t.Fatalf("cold run stats = %+v, want %d entries and misses", st, plan.Size())
	}

	for _, workers := range []int{1, 4, 0} { // 0 = all cores
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			before := s.Stats()
			var sw core.SweepStats
			warm, err := core.NewRunner(
				core.WithWorkers(workers),
				core.WithTraceRetention(core.StreamProfiles),
				core.WithResultStore(s),
				core.WithSweepStats(func(st core.SweepStats) { sw = st }),
			).Run(plan)
			if err != nil {
				t.Fatal(err)
			}
			if got := wireBytes(t, warm); !bytes.Equal(got, want) {
				t.Fatal("warm (cached) run is not byte-identical to the fresh run")
			}
			after := s.Stats()
			if hits := after.Hits - before.Hits; hits != uint64(plan.Size()) {
				t.Fatalf("warm run hits = %d, want %d", hits, plan.Size())
			}
			if after.Misses != before.Misses {
				t.Fatalf("warm run missed %d cells", after.Misses-before.Misses)
			}
			// Zero simulations: no testbed was ever built or reused.
			if sw.TestbedsBuilt != 0 || sw.TestbedsReused != 0 {
				t.Fatalf("warm run simulated: %+v", sw)
			}
		})
	}
}

// TestStoreDigestSensitivity pins what the content address covers: seed,
// pair, effective options and scenario all change the digest; the plan's
// labels (variant name, Index) do not exist in it at all.
func TestStoreDigestSensitivity(t *testing.T) {
	pair := core.PairKey{Set: 1, Class: media.Low}
	dsl, err := netem.Find("dsl")
	if err != nil {
		t.Fatal(err)
	}
	base := wire.CellSpecFrom(pair, core.Options{}, 7).Digest()
	distinct := map[string]string{"base": base}
	add := func(name, d string) {
		for prev, pd := range distinct {
			if pd == d {
				t.Errorf("%s digest collides with %s", name, prev)
			}
		}
		distinct[name] = d
	}
	add("seed", wire.CellSpecFrom(pair, core.Options{}, 8).Digest())
	add("pair", wire.CellSpecFrom(core.PairKey{Set: 3, Class: media.Low}, core.Options{}, 7).Digest())
	add("options", wire.CellSpecFrom(pair, core.Options{Sequential: true}, 7).Digest())
	add("scenario", wire.CellSpecFrom(pair, core.Options{Scenario: dsl}, 7).Digest())
}
