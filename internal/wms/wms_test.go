package wms

import (
	"math"
	"testing"
	"time"

	"turbulence/internal/capture"
	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netsim"
	"turbulence/internal/stats"
)

var (
	clientAddr = inet.MakeAddr(130, 215, 10, 5)
	serverAddr = inet.MakeAddr(207, 46, 1, 9)
)

func testbed(t *testing.T, seed int64) (*netsim.Network, *netsim.Host, *Server) {
	t.Helper()
	n := netsim.New(seed)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	specs := make([]netsim.HopSpec, 8)
	for i := range specs {
		specs[i] = netsim.HopSpec{
			Addr:      inet.MakeAddr(10, 1, 0, byte(i+1)),
			Bandwidth: 45e6,
			PropDelay: 2 * time.Millisecond,
			JitterMax: 200 * time.Microsecond,
		}
	}
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	return n, c, NewServer(s)
}

func TestUnitPlan(t *testing.T) {
	// High rate: a tick's worth of media exceeds the minimum unit.
	unit, tick := UnitPlan(323100)
	if tick != NominalTick {
		t.Fatalf("tick=%v", tick)
	}
	if unit != 4038 { // 323100 * 0.1 / 8
		t.Fatalf("unit=%d", unit)
	}
	// Low rate: unit pinned at the minimum, tick stretched.
	unit, tick = UnitPlan(49800)
	if unit != MinUnitBytes {
		t.Fatalf("low unit=%d", unit)
	}
	wantSec := float64(MinUnitBytes*8) / 49800 * float64(time.Second)
	wantTick := time.Duration(wantSec)
	if d := tick - wantTick; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("low tick=%v, want ~%v", tick, wantTick)
	}
	// Boundary: exactly at the minimum.
	unit, tick = UnitPlan(float64(MinUnitBytes * 8 * 10))
	if unit != MinUnitBytes || tick != NominalTick {
		t.Fatalf("boundary: %d %v", unit, tick)
	}
}

func TestProtocolRoundTrips(t *testing.T) {
	d, err := ParseDescribe(MarshalDescribe(Describe{ClipRef: "1/M-h"}))
	if err != nil || d.ClipRef != "1/M-h" {
		t.Fatalf("describe: %+v %v", d, err)
	}
	resp := DescribeResp{OK: true, EncodedBps: 323100, FrameMilli: 25000, DurationMs: 120000, TotalFrames: 3000, UnitBytes: 4038, TickMs: 100}
	got, err := ParseDescribeResp(MarshalDescribeResp(resp))
	if err != nil || got != resp {
		t.Fatalf("describeResp: %+v %v", got, err)
	}
	if got.FrameRate() != 25 || got.Duration() != 2*time.Minute || got.Tick() != 100*time.Millisecond {
		t.Fatal("derived accessors")
	}
	p, err := ParsePlay(MarshalPlay(Play{ClipRef: "x", DataPort: 7001}))
	if err != nil || p.DataPort != 7001 || p.ClipRef != "x" {
		t.Fatalf("play: %+v %v", p, err)
	}
	pr, err := ParsePlayResp(MarshalPlayResp(PlayResp{OK: true}))
	if err != nil || !pr.OK {
		t.Fatalf("playResp: %+v %v", pr, err)
	}
	h, payload, err := ParseData(MarshalData(DataHeader{Seq: 9, SentMs: 1234}, []byte{1, 2, 3}))
	if err != nil || h.Seq != 9 || h.SentMs != 1234 || len(payload) != 3 {
		t.Fatalf("data: %+v %v", h, err)
	}
}

func TestProtocolParseErrors(t *testing.T) {
	if _, err := MsgType(nil); err != ErrShort {
		t.Fatal("MsgType nil")
	}
	if _, err := ParseDescribe([]byte{MsgPlay}); err != ErrBadType {
		t.Fatal("describe type")
	}
	if _, err := ParseDescribe([]byte{MsgDescribe, 0, 9, 'x'}); err == nil {
		t.Fatal("describe bad string")
	}
	if _, err := ParseDescribe(append(MarshalDescribe(Describe{ClipRef: "a"}), 0)); err == nil {
		t.Fatal("describe trailing")
	}
	if _, err := ParseDescribeResp([]byte{MsgDescribeResp, 1, 2}); err == nil {
		t.Fatal("describeResp short")
	}
	if _, err := ParsePlay([]byte{MsgPlay, 0, 1, 'x'}); err == nil {
		t.Fatal("play missing port")
	}
	if _, err := ParsePlayResp([]byte{MsgPlayResp}); err == nil {
		t.Fatal("playResp short")
	}
	if _, _, err := ParseData([]byte{MsgData}); err != ErrShort {
		t.Fatal("data short")
	}
	if _, _, err := ParseData(make([]byte, 16)); err != ErrBadType {
		t.Fatal("data type")
	}
}

// streamClip runs a full session and returns the player and client trace.
func streamClip(t *testing.T, clip media.Clip, seed int64) (*Player, *capture.Trace) {
	t.Helper()
	n, c, srv := testbed(t, seed)
	srv.Register(clip.Name(), clip)
	sniff := capture.Attach(c)
	var done bool
	p := NewPlayer(c, serverAddr, clip.Name(), 4001, 4002, PlayerEvents{
		Done: func(eventsim.Time) { done = true },
	})
	p.Start()
	if err := n.Run(eventsim.At(clip.Duration.Seconds() + 60)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("session did not complete; state=%v", p.State())
	}
	return p, sniff.Trace()
}

func TestLowRateClipPlaysAt13FPS(t *testing.T) {
	clip, _ := media.FindClip(5, media.WindowsMedia, media.Low) // 39 Kbps
	p, trace := streamClip(t, clip, 11)
	if p.Meta().FrameRate() != 13 {
		t.Fatalf("meta fps=%v", p.Meta().FrameRate())
	}
	if fps := p.AchievedFPS(); math.Abs(fps-13) > 1 {
		t.Fatalf("achieved fps=%v, want ~13 (paper Fig 13)", fps)
	}
	// Low-rate WMP wire packets sit in the 800-1000+ byte band and are
	// never fragmented (paper Fig 5, 6).
	flow := trace.Recv().FlowTo(4002)
	if flow == nil {
		t.Fatal("no data flow captured")
	}
	fs := flow.Fragmentation()
	if fs.Continuations != 0 {
		t.Fatalf("low-rate clip fragmented: %+v", fs)
	}
	sizes := flow.PacketSizes()
	sum := stats.Summarize(sizes)
	if sum.Mean < 800 || sum.Mean > 1100 {
		t.Fatalf("mean packet size=%v, want 800-1100", sum.Mean)
	}
}

func TestHighRateClipFragments(t *testing.T) {
	clip, _ := media.FindClip(1, media.WindowsMedia, media.High) // 323.1 Kbps
	p, trace := streamClip(t, clip, 12)
	if p.Meta().FrameRate() != 25 {
		t.Fatalf("meta fps=%v", p.Meta().FrameRate())
	}
	flow := trace.Recv().FlowTo(4002)
	fs := flow.Fragmentation()
	if fs.Continuations == 0 {
		t.Fatal("high-rate clip did not fragment")
	}
	// ~66% of wire packets are continuation fragments at ~300 Kbps
	// (paper §3.C: "66% of packets are IP fragments for clips encoded at
	// 300 Kbps").
	share := fs.ContinuationShare()
	if share < 0.60 || share < 0.5 {
		t.Fatalf("continuation share=%v, want ~0.66", share)
	}
	if share > 0.72 {
		t.Fatalf("continuation share=%v too high", share)
	}
	// Fragment trains have a constant length (paper Fig 4: "a constant
	// number of packets in each group").
	trains := flow.TrainLengths()
	for _, n := range trains[:len(trains)-1] { // last unit may be short
		if n != 3 {
			t.Fatalf("train length %d, want 3", n)
		}
	}
	// Full fragments ride at the wire maximum of 1514 bytes.
	distinct, _ := flow.DistinctSizes()
	if distinct[len(distinct)-1] != inet.MaxWirePacket {
		t.Fatalf("max wire size=%d, want %d", distinct[len(distinct)-1], inet.MaxWirePacket)
	}
}

func TestCBRPacing(t *testing.T) {
	clip, _ := media.FindClip(5, media.WindowsMedia, media.Low)
	_, trace := streamClip(t, clip, 13)
	flow := trace.Recv().FlowTo(4002)
	ia := flow.GroupInterarrivals()
	sum := stats.Summarize(ia)
	// Interarrival spread is tiny: CV below 5% (paper §3.E: essentially
	// constant time interval between packets).
	if cv := sum.StdDev / sum.Mean; cv > 0.05 {
		t.Fatalf("interarrival CV=%v, want < 0.05", cv)
	}
	// Mean interarrival matches the unit plan's tick.
	_, tick := UnitPlan(clip.EncodedBps())
	if math.Abs(sum.Mean-tick.Seconds()) > 0.01 {
		t.Fatalf("mean interarrival=%v, want ~%v", sum.Mean, tick.Seconds())
	}
}

func TestBufferingAtPlayoutRate(t *testing.T) {
	// Paper §3.F: MediaPlayer buffers at the same rate as it plays; the
	// first 5 seconds of traffic match the steady state.
	clip, _ := media.FindClip(1, media.WindowsMedia, media.High)
	_, trace := streamClip(t, clip, 14)
	flow := trace.Recv().FlowTo(4002)
	bw := flow.BandwidthSeries(time.Second)
	if len(bw) < 20 {
		t.Fatalf("series too short: %d", len(bw))
	}
	early := stats.Mean([]float64{bw[1].Y, bw[2].Y, bw[3].Y, bw[4].Y})
	midStart := len(bw) / 2
	mid := stats.Mean([]float64{bw[midStart].Y, bw[midStart+1].Y, bw[midStart+2].Y, bw[midStart+3].Y})
	if ratio := early / mid; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("buffering/steady ratio=%v, want ~1 (paper: MediaPlayer ratio is 1)", ratio)
	}
}

func TestInterleavedAppDelivery(t *testing.T) {
	// Paper §3.G / Figure 12: OS receives units every tick, the
	// application receives them in batches once per second.
	clip, _ := media.FindClip(5, media.WindowsMedia, media.High) // 250.4 Kbps, 100 ms tick
	n, c, srv := testbed(t, 15)
	srv.Register(clip.Name(), clip)
	var osTimes, appTimes []float64
	p := NewPlayer(c, serverAddr, clip.Name(), 4001, 4002, PlayerEvents{
		OSPacket:  func(now eventsim.Time, seq uint32, _ int) { osTimes = append(osTimes, now.Seconds()) },
		AppPacket: func(now eventsim.Time, seq uint32) { appTimes = append(appTimes, now.Seconds()) },
	})
	p.Start()
	n.Run(eventsim.At(30))
	if len(osTimes) < 100 || len(appTimes) < 50 {
		t.Fatalf("events: os=%d app=%d", len(osTimes), len(appTimes))
	}
	// OS interarrivals ~ 100 ms.
	var osIA []float64
	for i := 1; i < len(osTimes); i++ {
		osIA = append(osIA, osTimes[i]-osTimes[i-1])
	}
	if m := stats.Mean(osIA); math.Abs(m-0.1) > 0.01 {
		t.Fatalf("OS interarrival=%v, want ~0.1", m)
	}
	// App deliveries cluster at 1-second boundaries in batches of ~10.
	batches := make(map[int]int)
	for _, at := range appTimes {
		batches[int(at*1000+0.5)]++ // millisecond key
	}
	bigBatches := 0
	for _, n := range batches {
		if n >= 8 {
			bigBatches++
		}
	}
	if bigBatches < 10 {
		t.Fatalf("app batches of ~10: %d, want >= 10", bigBatches)
	}
	// Distinct app delivery instants are ~1 s apart.
	var instants []float64
	for ms := range batches {
		instants = append(instants, float64(ms)/1000)
	}
	if len(instants) < 5 {
		t.Fatalf("too few app delivery instants: %d", len(instants))
	}
}

func TestHighRateFPS25(t *testing.T) {
	clip, _ := media.FindClip(5, media.WindowsMedia, media.High)
	p, _ := streamClip(t, clip, 16)
	if fps := p.AchievedFPS(); math.Abs(fps-25) > 1 {
		t.Fatalf("achieved fps=%v, want ~25", fps)
	}
	if p.LossRate() > 0.01 {
		t.Fatalf("loss=%v on a clean path", p.LossRate())
	}
}

func TestPlayerStartupLatency(t *testing.T) {
	clip, _ := media.FindClip(3, media.WindowsMedia, media.Low)
	n, c, srv := testbed(t, 17)
	srv.Register(clip.Name(), clip)
	var playStart eventsim.Time
	p := NewPlayer(c, serverAddr, clip.Name(), 4001, 4002, PlayerEvents{
		StateChange: func(now eventsim.Time, s State) {
			if s == Playing {
				playStart = now
			}
		},
	})
	p.Start()
	n.Run(eventsim.At(90))
	// Streaming at playout rate means filling the 5 s preroll takes ~5 s.
	if playStart.Seconds() < 4.5 || playStart.Seconds() > 8 {
		t.Fatalf("playout began at %v, want ~5-7 s", playStart)
	}
}

func TestServerUnknownClip(t *testing.T) {
	n, c, _ := testbed(t, 18)
	var done bool
	p := NewPlayer(c, serverAddr, "no-such-clip", 4001, 4002, PlayerEvents{
		Done: func(eventsim.Time) { done = true },
	})
	p.Start()
	n.Run(eventsim.At(60))
	if !done || p.State() != Done {
		t.Fatal("player did not abort on unknown clip")
	}
	if p.FramesPlayed != 0 {
		t.Fatal("played frames of a missing clip")
	}
}

func TestHandshakeSurvivesControlLoss(t *testing.T) {
	n := netsim.New(19)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	specs := []netsim.HopSpec{{
		Addr: inet.MakeAddr(10, 1, 0, 1), Bandwidth: 10e6,
		PropDelay: 5 * time.Millisecond, Loss: 0.3, // brutal control loss
	}}
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	srv := NewServer(s)
	clip, _ := media.FindClip(2, media.WindowsMedia, media.Low)
	srv.Register(clip.Name(), clip)
	var reached State
	p := NewPlayer(c, serverAddr, clip.Name(), 4001, 4002, PlayerEvents{
		StateChange: func(_ eventsim.Time, st State) {
			if st > reached && st != Done {
				reached = st
			}
		},
	})
	p.Start()
	n.Run(eventsim.At(120))
	if reached < Buffering {
		t.Fatalf("handshake never completed under loss: reached %v", reached)
	}
}

func TestLossReducesFrameRate(t *testing.T) {
	n := netsim.New(20)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	specs := []netsim.HopSpec{{
		Addr: inet.MakeAddr(10, 1, 0, 1), Bandwidth: 45e6,
		PropDelay: 5 * time.Millisecond, Loss: 0.05,
	}}
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	srv := NewServer(s)
	clip, _ := media.FindClip(1, media.WindowsMedia, media.High)
	srv.Register(clip.Name(), clip)
	p := NewPlayer(c, serverAddr, clip.Name(), 4001, 4002, PlayerEvents{})
	p.Start()
	n.Run(eventsim.At(clip.Duration.Seconds() + 60))
	if p.UnitsLost == 0 {
		t.Fatal("no unit loss on a 5% lossy path")
	}
	if fps := p.AchievedFPS(); fps >= 25 {
		t.Fatalf("fps=%v under loss, want < encoded 25", fps)
	}
	if p.LossRate() <= 0 {
		t.Fatal("LossRate")
	}
}

func TestServerSessionBookkeeping(t *testing.T) {
	clip, _ := media.FindClip(3, media.WindowsMedia, media.Low)
	n, c, srv := testbed(t, 21)
	srv.Register(clip.Name(), clip)
	p := NewPlayer(c, serverAddr, clip.Name(), 4001, 4002, PlayerEvents{})
	p.Start()
	n.Run(eventsim.At(200))
	if srv.Described != 1 || srv.Played != 1 {
		t.Fatalf("server counters: %d %d", srv.Described, srv.Played)
	}
	if srv.ActiveSessions() != 0 {
		t.Fatalf("sessions leaked: %d", srv.ActiveSessions())
	}
}

func TestStateString(t *testing.T) {
	for _, s := range []State{Idle, Connecting, Buffering, Playing, Done} {
		if s.String() == "" {
			t.Fatal("state string")
		}
	}
}

func TestDoubleStartPanics(t *testing.T) {
	n, c, srv := testbed(t, 22)
	clip, _ := media.FindClip(3, media.WindowsMedia, media.Low)
	srv.Register(clip.Name(), clip)
	p := NewPlayer(c, serverAddr, clip.Name(), 4001, 4002, PlayerEvents{})
	p.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	p.Start()
	_ = n
}
