package wms

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// UnitDigest folds data units into an order-independent digest of the
// delivered payload. Each unit hashes to sha256(seq || segPayload) and
// the per-unit hashes combine by wrapping addition of their 64-bit words,
// so two sessions that delivered the same set of (seq, payload) units —
// in any arrival order — produce the same digest. This is exactly the
// equivalence live parity needs: a live loopback session reorders packets
// relative to the simulator but must deliver the identical payload set.
//
// Addition (not XOR) is deliberate: XOR would cancel a unit delivered
// twice, making a duplicated-and-dropped pair invisible. The unit count
// folded into Sum closes the remaining multiset ambiguity for practical
// purposes.
type UnitDigest struct {
	acc     [4]uint64
	n       int
	scratch []byte
}

// Add folds one data unit into the digest.
func (d *UnitDigest) Add(seq uint32, payload []byte) {
	d.scratch = d.scratch[:0]
	d.scratch = binary.BigEndian.AppendUint32(d.scratch, seq)
	d.scratch = append(d.scratch, payload...)
	h := sha256.Sum256(d.scratch)
	for i := range d.acc {
		d.acc[i] += binary.BigEndian.Uint64(h[i*8:])
	}
	d.n++
}

// Units reports how many units have been folded in.
func (d *UnitDigest) Units() int { return d.n }

// Sum renders the digest: the unit count and the folded hash words.
func (d *UnitDigest) Sum() string {
	return fmt.Sprintf("%d:%016x%016x%016x%016x", d.n, d.acc[0], d.acc[1], d.acc[2], d.acc[3])
}
