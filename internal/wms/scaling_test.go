package wms

import (
	"testing"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netsim"
)

// constrainedTestbed builds a path whose bottleneck sits below the clip's
// encoding rate, forcing sustained loss without scaling.
func constrainedTestbed(t *testing.T, seed int64, bottleneck float64) (*netsim.Network, *netsim.Host, *Server) {
	t.Helper()
	n := netsim.New(seed)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	specs := []netsim.HopSpec{
		{Addr: inet.MakeAddr(10, 9, 0, 1), Bandwidth: 10e6, PropDelay: 2 * time.Millisecond},
		{Addr: inet.MakeAddr(10, 9, 0, 2), Bandwidth: bottleneck, PropDelay: 5 * time.Millisecond, QueueLen: 20},
		{Addr: inet.MakeAddr(10, 9, 0, 3), Bandwidth: 45e6, PropDelay: 2 * time.Millisecond},
	}
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	return n, c, NewServer(s)
}

func runConstrained(t *testing.T, seed int64, scalingOn bool) *Player {
	t.Helper()
	clip, _ := media.FindClip(1, media.WindowsMedia, media.High) // 323.1 Kbps
	n, c, srv := constrainedTestbed(t, seed, 250e3)              // starved
	srv.Register(clip.Name(), clip)
	srv.EnableScaling(scalingOn)
	p := NewPlayer(c, serverAddr, clip.Name(), 4001, 4002, PlayerEvents{})
	p.Start()
	n.Run(eventsim.At(clip.Duration.Seconds() + 60))
	return p
}

func TestScalingReducesLoss(t *testing.T) {
	unscaled := runConstrained(t, 71, false)
	scaled := runConstrained(t, 71, true)
	if unscaled.LossRate() < 0.10 {
		t.Fatalf("unscaled loss=%.2f; bottleneck not binding", unscaled.LossRate())
	}
	if scaled.LossRate() >= unscaled.LossRate()/2 {
		t.Fatalf("scaling did not help: %.2f vs %.2f", scaled.LossRate(), unscaled.LossRate())
	}
}

func TestScalingTradesFrameRate(t *testing.T) {
	scaled := runConstrained(t, 72, true)
	// Thinning sends fewer frames than the encoded ladder.
	if scaled.AchievedFPS() >= 25 {
		t.Fatalf("scaled fps=%v, expected thinning below 25", scaled.AchievedFPS())
	}
	if scaled.AchievedFPS() < 2 {
		t.Fatalf("scaled fps=%v, thinning should retain keyframes at least", scaled.AchievedFPS())
	}
}

func TestScalingServerCountsSteps(t *testing.T) {
	clip, _ := media.FindClip(1, media.WindowsMedia, media.High)
	n, c, srv := constrainedTestbed(t, 73, 250e3)
	srv.Register(clip.Name(), clip)
	srv.EnableScaling(true)
	p := NewPlayer(c, serverAddr, clip.Name(), 4001, 4002, PlayerEvents{})
	p.Start()
	n.Run(eventsim.At(60))
	if srv.ThinSteps == 0 {
		t.Fatal("server never thinned under sustained loss")
	}
}

func TestScalingOffByDefault(t *testing.T) {
	clip, _ := media.FindClip(1, media.WindowsMedia, media.High)
	n, c, srv := constrainedTestbed(t, 74, 250e3)
	srv.Register(clip.Name(), clip)
	p := NewPlayer(c, serverAddr, clip.Name(), 4001, 4002, PlayerEvents{})
	p.Start()
	n.Run(eventsim.At(60))
	if srv.ThinSteps != 0 {
		t.Fatal("scaling engaged despite being disabled")
	}
}

func TestFeedbackRoundTrip(t *testing.T) {
	fb, err := ParseFeedback(MarshalFeedback(Feedback{LossPermille: 123}))
	if err != nil || fb.LossPermille != 123 {
		t.Fatalf("feedback: %+v %v", fb, err)
	}
	if _, err := ParseFeedback([]byte{MsgFeedback}); err == nil {
		t.Fatal("short feedback accepted")
	}
	if _, err := ParseFeedback([]byte{MsgData, 0, 0}); err == nil {
		t.Fatal("wrong type accepted")
	}
}

// TestScalingDoesNotDisturbCleanPaths guards the faithful reproduction:
// with scaling enabled but no loss, behaviour is identical to baseline.
func TestScalingDoesNotDisturbCleanPaths(t *testing.T) {
	clip, _ := media.FindClip(3, media.WindowsMedia, media.Low)
	run := func(scalingOn bool) *Player {
		n, c, srv := testbed(t, 75)
		srv.Register(clip.Name(), clip)
		srv.EnableScaling(scalingOn)
		p := NewPlayer(c, serverAddr, clip.Name(), 4001, 4002, PlayerEvents{})
		p.Start()
		n.Run(eventsim.At(clip.Duration.Seconds() + 60))
		return p
	}
	a, b := run(false), run(true)
	if a.FramesPlayed != b.FramesPlayed || a.UnitsReceived != b.UnitsReceived {
		t.Fatalf("clean-path divergence: frames %d vs %d, units %d vs %d",
			a.FramesPlayed, b.FramesPlayed, a.UnitsReceived, b.UnitsReceived)
	}
}
