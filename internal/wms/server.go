package wms

import (
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netsim"
	"turbulence/internal/scaling"
	"turbulence/internal/segment"
	"turbulence/internal/transport"
)

// MinUnitBytes is the smallest ASF data unit the server emits. At low
// encoding rates (where a tenth of a second of media is tiny) the server
// still packs ~900-byte units and stretches the pacing interval instead,
// which is why the paper's Figure 6 shows low-rate MediaPlayer packets
// concentrated between 800 and 1000 bytes.
const MinUnitBytes = 900

// NominalTick is the pacing interval at rates where a tick's worth of
// media fills a unit — the 100 ms delivery period visible in Figure 12.
const NominalTick = 100 * time.Millisecond

// UnitPlan computes the data-unit payload budget and pacing interval for an
// encoding rate, the two parameters that fully determine WMS wire
// behaviour.
func UnitPlan(encodedBps float64) (unitBytes int, tick time.Duration) {
	perTick := encodedBps * NominalTick.Seconds() / 8
	if perTick >= MinUnitBytes {
		return int(perTick), NominalTick
	}
	sec := float64(MinUnitBytes*8) / encodedBps
	return MinUnitBytes, time.Duration(sec * float64(time.Second))
}

// Server is a Windows Media server host serving registered clips over the
// MMS-like control port and streaming CBR data units over UDP.
type Server struct {
	host  transport.Transport
	clips map[string]media.Clip

	// Sessions keyed by client control endpoint.
	sessions map[inet.Endpoint]*session

	// unitCap, when non-zero, bounds the data-unit payload. Capping at a
	// sub-MTU value is the ablation that shows Figure 5 would collapse to
	// zero if WMS packetised like RealServer does.
	unitCap int

	// scaling enables intelligent-streaming thinning driven by client
	// feedback (the §VI media-scaling extension).
	scaling bool

	// ctrlFn is the bound control handler, created once so Reset can rebind
	// the control port without allocating a method value.
	ctrlFn transport.UDPHandler

	// Counters.
	Described, Played, Stopped int
	// ThinSteps counts scaling level increases across sessions.
	ThinSteps int
}

type session struct {
	srv      *Server
	client   inet.Endpoint // data endpoint
	clip     media.Clip
	cutter   *segment.Cutter
	unit     int // full-quality data-unit payload budget
	effUnit  int // current budget after media scaling
	tick     time.Duration
	seq      uint32
	stopTick func()
	done     bool
	ctrl     scaling.Controller
	byteFrac [scaling.MaxLevel + 1]float64

	// enc and pkt are per-session scratch buffers for the segment-list
	// encoding and data-unit framing; both are copied onward by the UDP
	// layer, so reusing them keeps the per-packet send path free of
	// allocations.
	enc, pkt []byte
}

// NewServer attaches a WMS server to a simulated host, listening on the
// MMS control port.
func NewServer(host *netsim.Host) *Server {
	return NewServerOn(transport.NewSim(host))
}

// NewServerOn attaches a WMS server to any transport (simulated or live).
func NewServerOn(t transport.Transport) *Server {
	s := &Server{
		host:     t,
		clips:    make(map[string]media.Clip),
		sessions: make(map[inet.Endpoint]*session),
	}
	s.ctrlFn = s.onControl
	t.BindUDP(inet.PortMMSCtl, s.ctrlFn)
	return s
}

// Reset restores the server to its post-NewServerOn state without
// reallocating: sessions clear (their pending timers were already drained
// by the owning scheduler's reset), the ablation switches revert, counters
// zero, and the control port rebinds on the freshly reset transport.
// Registered clips are retained — registration is part of construction and
// identical across runs.
func (s *Server) Reset() {
	clear(s.sessions)
	s.unitCap = 0
	s.scaling = false
	s.Described = 0
	s.Played = 0
	s.Stopped = 0
	s.ThinSteps = 0
	s.host.BindUDP(inet.PortMMSCtl, s.ctrlFn)
}

// Register makes a clip available under its Table 1 name (and any aliases).
func (s *Server) Register(ref string, clip media.Clip) { s.clips[ref] = clip }

// SetUnitCap bounds the data-unit payload (0 = no cap). An ablation hook:
// capping below the MTU makes WMS packetise like RealServer and eliminates
// IP fragmentation.
func (s *Server) SetUnitCap(bytes int) { s.unitCap = bytes }

// EnableScaling turns on intelligent-streaming thinning: the server reacts
// to client Feedback by dropping delta frames (then all but keyframes),
// reducing the offered data rate under loss — the media-scaling behaviour
// the paper's future work proposes studying.
func (s *Server) EnableScaling(on bool) { s.scaling = on }

// plan computes the unit/tick for a clip honouring the cap.
func (s *Server) plan(clip media.Clip) (int, time.Duration) {
	unit, tick := UnitPlan(clip.EncodedBps())
	if s.unitCap > 0 && unit > s.unitCap {
		unit = s.unitCap
		sec := float64(unit*8) / clip.EncodedBps()
		tick = time.Duration(sec * float64(time.Second))
	}
	return unit, tick
}

// Host returns the transport the server is attached to.
func (s *Server) Host() transport.Transport { return s.host }

func (s *Server) onControl(now eventsim.Time, from inet.Endpoint, payload []byte) {
	t, err := MsgType(payload)
	if err != nil {
		return
	}
	switch t {
	case MsgDescribe:
		m, err := ParseDescribe(payload)
		if err != nil {
			return
		}
		s.Described++
		clip, ok := s.clips[m.ClipRef]
		resp := DescribeResp{OK: ok}
		if ok {
			unit, tick := s.plan(clip)
			resp.EncodedBps = uint32(clip.EncodedBps())
			resp.FrameMilli = uint32(clip.FrameRate() * 1000)
			resp.DurationMs = uint32(clip.Duration / time.Millisecond)
			resp.TotalFrames = uint32(clip.TotalFrames())
			resp.UnitBytes = uint32(unit)
			resp.TickMs = uint32(tick / time.Millisecond)
		}
		s.host.SendUDP(inet.PortMMSCtl, from, MarshalDescribeResp(resp))
	case MsgPlay:
		m, err := ParsePlay(payload)
		if err != nil {
			return
		}
		clip, ok := s.clips[m.ClipRef]
		s.host.SendUDP(inet.PortMMSCtl, from, MarshalPlayResp(PlayResp{OK: ok}))
		if !ok {
			return
		}
		s.Played++
		dataEP := inet.Endpoint{Addr: from.Addr, Port: inet.Port(m.DataPort)}
		s.startSession(dataEP, clip)
	case MsgStop:
		s.Stopped++
		for ep, sess := range s.sessions {
			if ep.Addr == from.Addr {
				sess.stop()
			}
		}
	case MsgFeedback:
		if !s.scaling {
			return
		}
		fb, err := ParseFeedback(payload)
		if err != nil {
			return
		}
		for ep, sess := range s.sessions {
			if ep.Addr == from.Addr {
				sess.applyFeedback(int(fb.LossPermille))
			}
		}
	}
}

// startSession begins CBR streaming. MediaPlayer's defining behaviour
// (paper §3.F): the buffering phase runs at the same rate as playout, so
// the pacer is a single uniform ticker for the whole clip.
func (s *Server) startSession(client inet.Endpoint, clip media.Clip) {
	if old := s.sessions[client]; old != nil {
		old.stop()
	}
	// The frame index is shared and read-only; Cutter and ByteFractions
	// only ever read it.
	sizes, keys := media.FrameIndex(clip)
	unit, tick := s.plan(clip)
	sess := &session{
		srv:      s,
		client:   client,
		clip:     clip,
		cutter:   segment.NewCutter(sizes, keys),
		unit:     unit,
		effUnit:  unit,
		tick:     tick,
		byteFrac: scaling.ByteFractions(sizes, keys),
	}
	s.sessions[client] = sess
	// First unit leaves immediately; the ticker paces the rest.
	s.host.After(0, "wms.firstUnit", func(now eventsim.Time) { sess.sendUnit(now) })
	sess.stopTick = s.host.Ticker(tick, "wms.pacer", func(now eventsim.Time) bool {
		return sess.sendUnit(now)
	})
}

// sendUnit emits one data unit; it reports false once the clip is done.
func (sess *session) sendUnit(now eventsim.Time) bool {
	if sess.done {
		return false
	}
	segs := sess.cutter.Next(sess.effUnit)
	if len(segs) == 0 {
		sess.stop()
		return false
	}
	sess.enc = segment.AppendList(sess.enc[:0], segs)
	h := DataHeader{Seq: sess.seq, SentMs: uint32(time.Duration(now) / time.Millisecond)}
	sess.seq++
	sess.pkt = AppendData(sess.pkt[:0], h, sess.enc)
	sess.srv.host.SendUDP(inet.PortMMSData, sess.client, sess.pkt)
	if sess.cutter.Done() {
		sess.stop()
		return false
	}
	return true
}

// applyFeedback updates the thinning level from a loss report. Thinning
// both filters frames and shrinks the per-tick unit budget by the level's
// byte fraction, so the offered bit rate actually falls.
func (sess *session) applyFeedback(lossPermille int) {
	before := sess.ctrl.Level()
	level := sess.ctrl.Report(lossPermille)
	if level > before {
		sess.srv.ThinSteps++
	}
	if level == scaling.Full {
		sess.cutter.SetFilter(nil)
		sess.effUnit = sess.unit
		return
	}
	sess.cutter.SetFilter(level.Admit)
	eff := int(float64(sess.unit) * sess.byteFrac[level])
	if eff < 256 {
		eff = 256
	}
	sess.effUnit = eff
}

func (sess *session) stop() {
	if sess.done {
		return
	}
	sess.done = true
	if sess.stopTick != nil {
		sess.stopTick()
	}
	delete(sess.srv.sessions, sess.client)
}

// ActiveSessions reports how many streams are in flight.
func (s *Server) ActiveSessions() int { return len(s.sessions) }
