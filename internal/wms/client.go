package wms

import (
	"fmt"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/segment"
	"turbulence/internal/transport"
)

// State is the player lifecycle.
type State int

const (
	// Idle: created, not started.
	Idle State = iota
	// Connecting: control handshake in progress.
	Connecting
	// Buffering: receiving data, playout not yet started.
	Buffering
	// Playing: playout clock running.
	Playing
	// Done: clip finished (or aborted).
	Done
)

// String names the state.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Connecting:
		return "connecting"
	case Buffering:
		return "buffering"
	case Playing:
		return "playing"
	default:
		return "done"
	}
}

// Preroll is the delay buffer MediaPlayer fills before starting playout.
// Because the WMS server streams at exactly the playout rate, the user
// waits approximately this long (paper §3.F: with equal buffer sizes,
// MediaPlayer starts later than RealPlayer).
const Preroll = 5 * time.Second

// InterleaveFlush is the application delivery period: the client delivers
// received data units to the application in one batch per second —
// Figure 12's "groups of 10, once per second" at the nominal 100 ms tick.
const InterleaveFlush = time.Second

// PlayerEvents are the observation hooks MediaTracker attaches.
type PlayerEvents struct {
	// OSPacket fires when the OS hands the client a data unit (after IP
	// reassembly) — Figure 12's network/transport-layer series.
	OSPacket func(now eventsim.Time, seq uint32, wireUnits int)
	// AppPacket fires when the interleave buffer delivers a unit to the
	// application — Figure 12's application-layer series.
	AppPacket func(now eventsim.Time, seq uint32)
	// SecondPlayed fires once per played second with the achieved and
	// encoded frame counts — the Figure 13 series.
	SecondPlayed func(now eventsim.Time, second int, played, expected int)
	// DataUnit fires for every accepted data unit with its raw segment
	// payload, before segment decode — the hook payload-digest parity
	// checks hang off. The payload view is only valid during the call.
	DataUnit func(now eventsim.Time, seq uint32, segPayload []byte)
	// StateChange fires on lifecycle transitions.
	StateChange func(now eventsim.Time, s State)
	// SendError fires when a control-plane send fails (live sockets can
	// refuse writes; the simulator never does). The player keeps going —
	// control messages are retried — but the failure is now visible
	// instead of silently discarded.
	SendError func(now eventsim.Time, err error)
	// Done fires when the session completes.
	Done func(now eventsim.Time)
}

// Player is the MediaPlayer model: control handshake, interleaved
// delivery, delay buffer and playout clock.
type Player struct {
	host     transport.Transport
	server   inet.Addr
	clipRef  string
	ctlPort  inet.Port
	dataPort inet.Port
	// segScratch is the per-packet segment-decode buffer, reused so the
	// receive path does not allocate per data unit.
	segScratch []segment.Segment
	events     PlayerEvents

	state State
	meta  DescribeResp

	asm          *segment.Assembler
	interleave   []uint32 // unit seqs awaiting app delivery
	noInterleave bool
	stopFlush    func()
	stopPlay     func()

	nextSeq    uint32
	playSecond int
	retries    int

	// Feedback interval accounting for media scaling.
	stopFeedback func()
	fbLastRecv   int
	fbLastLost   int

	// Stats MediaTracker reads.
	UnitsReceived  int
	UnitsLost      int
	SendErrors     int
	BytesReceived  int
	FramesPlayed   int
	FramesExpected int
	StartedAt      eventsim.Time
	PlayBeganAt    eventsim.Time
	FinishedAt     eventsim.Time
}

// handshakeRetry is the control-message retransmit interval.
const handshakeRetry = 2 * time.Second

// maxRetries bounds control retransmissions before aborting.
const maxRetries = 5

// NewPlayer prepares a player on a simulated host for the given server
// and clip. ctlPort/dataPort must be unique per concurrent player on the
// host.
func NewPlayer(host *netsim.Host, server inet.Addr, clipRef string, ctlPort, dataPort inet.Port, ev PlayerEvents) *Player {
	return NewPlayerOn(transport.NewSim(host), server, clipRef, ctlPort, dataPort, ev)
}

// NewPlayerOn prepares a player on any transport (simulated or live).
func NewPlayerOn(t transport.Transport, server inet.Addr, clipRef string, ctlPort, dataPort inet.Port, ev PlayerEvents) *Player {
	return &Player{
		host:     t,
		server:   server,
		clipRef:  clipRef,
		ctlPort:  ctlPort,
		dataPort: dataPort,
		events:   ev,
		asm:      segment.NewAssembler(),
	}
}

// ReleaseResources recycles the player's pooled assembly state. Call only
// after the event loop has fully drained: a data unit delivered afterwards
// would touch recycled state (and now panics loudly instead).
func (p *Player) ReleaseResources() {
	if p.asm != nil {
		p.asm.Release()
		p.asm = nil
	}
}

// State returns the current lifecycle state.
func (p *Player) State() State { return p.state }

// DisableInterleave makes the client deliver units to the application as
// they arrive instead of in once-per-second batches — the ablation that
// flattens Figure 12's application-layer staircase. Call before data
// starts flowing.
func (p *Player) DisableInterleave() { p.noInterleave = true }

// Meta returns the described stream parameters (valid once buffering).
func (p *Player) Meta() DescribeResp { return p.meta }

// Start begins the session.
func (p *Player) Start() {
	if p.state != Idle {
		panic(fmt.Sprintf("wms: Start in state %v", p.state))
	}
	p.host.BindUDP(p.ctlPort, p.onControl)
	p.host.BindUDP(p.dataPort, p.onData)
	p.StartedAt = p.host.Now()
	p.setState(Connecting)
	p.sendDescribe()
}

func (p *Player) setState(s State) {
	if p.state == s {
		return
	}
	p.state = s
	if p.events.StateChange != nil {
		p.events.StateChange(p.host.Now(), s)
	}
}

func (p *Player) serverCtl() inet.Endpoint {
	return inet.Endpoint{Addr: p.server, Port: inet.PortMMSCtl}
}

// sendCtl sends one control message, surfacing a send failure through the
// SendError event and the SendErrors counter instead of discarding it.
func (p *Player) sendCtl(payload []byte) {
	if _, err := p.host.SendUDP(p.ctlPort, p.serverCtl(), payload); err != nil {
		p.SendErrors++
		if p.events.SendError != nil {
			p.events.SendError(p.host.Now(), err)
		}
	}
}

func (p *Player) sendDescribe() {
	if p.state != Connecting || p.meta.OK {
		return
	}
	if p.retries >= maxRetries {
		p.abort()
		return
	}
	p.retries++
	p.sendCtl(MarshalDescribe(Describe{ClipRef: p.clipRef}))
	p.host.After(handshakeRetry, "wms.describeRetry", func(eventsim.Time) { p.sendDescribe() })
}

func (p *Player) sendPlay() {
	if p.state != Connecting {
		return
	}
	if p.retries >= maxRetries {
		p.abort()
		return
	}
	p.retries++
	p.sendCtl(MarshalPlay(Play{ClipRef: p.clipRef, DataPort: uint16(p.dataPort)}))
	p.host.After(handshakeRetry, "wms.playRetry", func(eventsim.Time) { p.sendPlay() })
}

func (p *Player) onControl(now eventsim.Time, from inet.Endpoint, payload []byte) {
	if from.Addr != p.server {
		return
	}
	t, err := MsgType(payload)
	if err != nil {
		return
	}
	switch t {
	case MsgDescribeResp:
		m, err := ParseDescribeResp(payload)
		if err != nil || p.meta.OK {
			return
		}
		if !m.OK {
			p.abort()
			return
		}
		p.meta = m
		p.retries = 0
		p.sendPlay()
	case MsgPlayResp:
		m, err := ParsePlayResp(payload)
		if err != nil || p.state != Connecting {
			return
		}
		if !m.OK {
			p.abort()
			return
		}
		p.beginBuffering(now)
	}
}

// FeedbackInterval is how often the client reports reception quality to
// the server (media-scaling input).
const FeedbackInterval = 2 * time.Second

func (p *Player) beginBuffering(now eventsim.Time) {
	p.setState(Buffering)
	p.stopFeedback = p.host.Ticker(FeedbackInterval, "wms.feedback", func(eventsim.Time) bool {
		if p.state != Buffering && p.state != Playing {
			return false
		}
		recvDelta := p.UnitsReceived - p.fbLastRecv
		lostDelta := p.UnitsLost - p.fbLastLost
		p.fbLastRecv = p.UnitsReceived
		p.fbLastLost = p.UnitsLost
		permille := 0
		if total := recvDelta + lostDelta; total > 0 {
			permille = lostDelta * 1000 / total
		}
		p.sendCtl(MarshalFeedback(Feedback{LossPermille: uint16(permille)}))
		return true
	})
	if p.noInterleave {
		return
	}
	p.stopFlush = p.host.Ticker(InterleaveFlush, "wms.interleave", func(now eventsim.Time) bool {
		p.flushInterleave(now)
		return p.state == Buffering || p.state == Playing
	})
}

func (p *Player) onData(now eventsim.Time, from inet.Endpoint, payload []byte) {
	if from.Addr != p.server {
		return
	}
	// On a live transport the first data unit can outrun the PLAY 200 —
	// control and data arrive on different sockets. Data from the server
	// after a successful DESCRIBE implies the PLAY was accepted, so start
	// buffering rather than dropping the unit. (Never taken in the
	// simulator: its in-order delivery hands us the PLAY 200 first.)
	if p.state == Connecting && p.meta.OK {
		p.beginBuffering(now)
	}
	if p.state != Buffering && p.state != Playing {
		return
	}
	h, segPayload, err := ParseData(payload)
	if err != nil {
		return
	}
	if p.events.DataUnit != nil {
		p.events.DataUnit(now, h.Seq, segPayload)
	}
	// Sequence accounting: gaps are lost units (WMP has no retransmission;
	// interleaving only disperses the damage).
	if h.Seq > p.nextSeq {
		p.UnitsLost += int(h.Seq - p.nextSeq)
	}
	if h.Seq >= p.nextSeq {
		p.nextSeq = h.Seq + 1
	}
	p.UnitsReceived++
	p.BytesReceived += len(payload)
	if p.events.OSPacket != nil {
		p.events.OSPacket(now, h.Seq, 1)
	}
	segs, err := segment.DecodeListInto(p.segScratch[:0], segPayload)
	if err != nil {
		return
	}
	p.segScratch = segs
	for _, s := range segs {
		p.asm.Add(s)
	}
	if p.noInterleave {
		if p.events.AppPacket != nil {
			p.events.AppPacket(now, h.Seq)
		}
	} else {
		p.interleave = append(p.interleave, h.Seq)
	}
	p.maybeStartPlayout(now)
}

// flushInterleave delivers queued units to the application layer in a
// batch.
func (p *Player) flushInterleave(now eventsim.Time) {
	for _, seq := range p.interleave {
		if p.events.AppPacket != nil {
			p.events.AppPacket(now, seq)
		}
	}
	p.interleave = p.interleave[:0]
}

// bufferedMedia estimates how much media is in the delay buffer: completed
// frames convert to seconds at the encoded frame rate.
func (p *Player) bufferedMedia() time.Duration {
	if p.meta.FrameMilli == 0 {
		return 0
	}
	sec := float64(p.asm.CompletedFrames) / p.meta.FrameRate()
	return time.Duration(sec * float64(time.Second))
}

func (p *Player) maybeStartPlayout(now eventsim.Time) {
	if p.state != Buffering {
		return
	}
	if p.bufferedMedia() < Preroll && p.asm.CompletedFrames < int(p.meta.TotalFrames) {
		return
	}
	p.PlayBeganAt = now
	p.setState(Playing)
	p.stopPlay = p.host.Ticker(time.Second, "wms.playclock", func(now eventsim.Time) bool {
		return p.playOneSecond(now)
	})
}

// playOneSecond advances the playout clock, counting frames that arrived
// complete in time.
func (p *Player) playOneSecond(now eventsim.Time) bool {
	if p.state != Playing {
		return false
	}
	fps := p.meta.FrameRate()
	from := int(float64(p.playSecond) * fps)
	to := int(float64(p.playSecond+1) * fps)
	if total := int(p.meta.TotalFrames); to > total {
		to = total
	}
	played := 0
	for f := from; f < to; f++ {
		if p.asm.Complete(uint32(f)) {
			played++
		}
		p.asm.Drop(uint32(f))
	}
	p.FramesPlayed += played
	p.FramesExpected += to - from
	if p.events.SecondPlayed != nil {
		p.events.SecondPlayed(now, p.playSecond, played, to-from)
	}
	p.playSecond++
	if float64(p.playSecond) >= p.meta.Duration().Seconds() || from >= to {
		p.finish(now)
		return false
	}
	return true
}

func (p *Player) finish(now eventsim.Time) {
	if p.state == Done {
		return
	}
	p.FinishedAt = now
	p.setState(Done)
	p.teardown()
	p.sendCtl(MarshalStop(Stop{}))
	if p.events.Done != nil {
		p.events.Done(now)
	}
}

func (p *Player) abort() {
	if p.state == Done {
		return
	}
	p.FinishedAt = p.host.Now()
	p.setState(Done)
	p.teardown()
	if p.events.Done != nil {
		p.events.Done(p.host.Now())
	}
}

func (p *Player) teardown() {
	if p.stopFlush != nil {
		p.stopFlush()
	}
	if p.stopPlay != nil {
		p.stopPlay()
	}
	if p.stopFeedback != nil {
		p.stopFeedback()
	}
	p.host.UnbindUDP(p.ctlPort)
	p.host.UnbindUDP(p.dataPort)
}

// LossRate reports the fraction of data units lost.
func (p *Player) LossRate() float64 {
	total := p.UnitsReceived + p.UnitsLost
	if total == 0 {
		return 0
	}
	return float64(p.UnitsLost) / float64(total)
}

// AchievedFPS reports the mean played frame rate.
func (p *Player) AchievedFPS() float64 {
	if p.PlayBeganAt == 0 && p.FramesPlayed == 0 {
		return 0
	}
	secs := float64(p.playSecond)
	if secs == 0 {
		return 0
	}
	return float64(p.FramesPlayed) / secs
}
