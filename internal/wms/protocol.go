// Package wms is the behavioural model of the Windows Media streaming
// stack (MediaPlayer 7.1 against a Windows Media server) reconstructed from
// the paper's observations:
//
//   - The server packs media into large ASF-style data units and sends one
//     unit per fixed pacing tick, producing an essentially constant bit
//     rate with uniform packet sizes and interarrivals (paper §3.D, §3.E).
//   - At encoding rates above roughly 100 Kbps a data unit exceeds the path
//     MTU, so the sending OS emits a train of IP fragments per unit —
//     1514-byte wire packets plus a remainder (paper §3.C, Figures 4-5).
//   - The server buffers at the same rate it plays: startup traffic looks
//     identical to steady-state traffic (paper §3.F, Figures 10-11).
//   - The client delivers received units to the application in interleaved
//     batches of ten units once per second, while the OS sees units every
//     pacing tick (paper §3.G, Figure 12).
//   - At low encoding rates the codec sacrifices frame rate (~13 fps)
//     rather than frame quality (paper §3.H, Figures 13-15).
package wms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Control message types on the MMS-like control channel.
const (
	MsgDescribe byte = iota + 1
	MsgDescribeResp
	MsgPlay
	MsgPlayResp
	MsgStop
	MsgData     // data-channel packets
	MsgFeedback // client reception-quality reports (media scaling input)
)

// Errors returned by the codec.
var (
	ErrShort      = errors.New("wms: message too short")
	ErrBadType    = errors.New("wms: unexpected message type")
	ErrBadpayload = errors.New("wms: malformed message payload")
)

// Describe asks the server for a clip's parameters.
type Describe struct {
	ClipRef string
}

// DescribeResp carries the stream parameters MediaTracker records.
type DescribeResp struct {
	OK          bool
	EncodedBps  uint32
	FrameMilli  uint32 // frame rate in milli-fps
	DurationMs  uint32
	TotalFrames uint32
	UnitBytes   uint32 // payload budget of one ASF data unit
	TickMs      uint32 // pacing interval
}

// FrameRate returns the frame rate in fps.
func (d DescribeResp) FrameRate() float64 { return float64(d.FrameMilli) / 1000 }

// Duration returns the clip duration.
func (d DescribeResp) Duration() time.Duration {
	return time.Duration(d.DurationMs) * time.Millisecond
}

// Tick returns the pacing interval.
func (d DescribeResp) Tick() time.Duration { return time.Duration(d.TickMs) * time.Millisecond }

// Play starts streaming to the client's data port.
type Play struct {
	ClipRef  string
	DataPort uint16
}

// PlayResp acknowledges (or refuses) a Play.
type PlayResp struct {
	OK bool
}

// Stop ends a session.
type Stop struct{}

// DataHeader precedes each data unit on the data channel.
type DataHeader struct {
	Seq    uint32
	SentMs uint32 // server send time, for diagnostics
}

// DataHeaderLen is the wire size of a DataHeader plus the type byte.
const DataHeaderLen = 1 + 8

func marshalString(b []byte, s string) []byte {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	return append(append(b, l[:]...), s...)
}

func parseString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrShort
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, ErrBadpayloadf("string length %d exceeds buffer", n)
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// ErrBadpayloadf wraps ErrBadpayload with context.
func ErrBadpayloadf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadpayload, fmt.Sprintf(format, args...))
}

// MarshalDescribe encodes a Describe.
func MarshalDescribe(m Describe) []byte {
	return marshalString([]byte{MsgDescribe}, m.ClipRef)
}

// MarshalDescribeResp encodes a DescribeResp.
func MarshalDescribeResp(m DescribeResp) []byte {
	b := make([]byte, 1, 27)
	b[0] = MsgDescribeResp
	ok := byte(0)
	if m.OK {
		ok = 1
	}
	b = append(b, ok)
	var tmp [4]byte
	for _, v := range []uint32{m.EncodedBps, m.FrameMilli, m.DurationMs, m.TotalFrames, m.UnitBytes, m.TickMs} {
		binary.BigEndian.PutUint32(tmp[:], v)
		b = append(b, tmp[:]...)
	}
	return b
}

// MarshalPlay encodes a Play.
func MarshalPlay(m Play) []byte {
	b := marshalString([]byte{MsgPlay}, m.ClipRef)
	var p [2]byte
	binary.BigEndian.PutUint16(p[:], m.DataPort)
	return append(b, p[:]...)
}

// MarshalPlayResp encodes a PlayResp.
func MarshalPlayResp(m PlayResp) []byte {
	ok := byte(0)
	if m.OK {
		ok = 1
	}
	return []byte{MsgPlayResp, ok}
}

// MarshalStop encodes a Stop.
func MarshalStop(Stop) []byte { return []byte{MsgStop} }

// MarshalData encodes a data unit: header plus the already-encoded segment
// list payload.
func MarshalData(h DataHeader, segPayload []byte) []byte {
	return AppendData(nil, h, segPayload)
}

// AppendData is MarshalData appending into dst, returning the extended
// slice; the send path reuses one scratch buffer per session this way (the
// UDP layer copies the bytes onward).
func AppendData(dst []byte, h DataHeader, segPayload []byte) []byte {
	base := len(dst)
	dst = append(dst, make([]byte, DataHeaderLen)...)
	b := dst[base:]
	b[0] = MsgData
	binary.BigEndian.PutUint32(b[1:], h.Seq)
	binary.BigEndian.PutUint32(b[5:], h.SentMs)
	return append(dst, segPayload...)
}

// Feedback is the client's periodic reception-quality report; the server's
// intelligent-streaming logic thins the stream when loss is high (the
// media-scaling capability the paper's §VI notes both players have).
type Feedback struct {
	LossPermille uint16
}

// MarshalFeedback encodes a Feedback.
func MarshalFeedback(m Feedback) []byte {
	b := make([]byte, 3)
	b[0] = MsgFeedback
	binary.BigEndian.PutUint16(b[1:], m.LossPermille)
	return b
}

// ParseFeedback decodes a Feedback.
func ParseFeedback(b []byte) (Feedback, error) {
	if len(b) != 3 || b[0] != MsgFeedback {
		return Feedback{}, ErrBadType
	}
	return Feedback{LossPermille: binary.BigEndian.Uint16(b[1:])}, nil
}

// MsgType peeks the type of a control or data message.
func MsgType(b []byte) (byte, error) {
	if len(b) < 1 {
		return 0, ErrShort
	}
	return b[0], nil
}

// ParseDescribe decodes a Describe.
func ParseDescribe(b []byte) (Describe, error) {
	if len(b) < 1 || b[0] != MsgDescribe {
		return Describe{}, ErrBadType
	}
	ref, rest, err := parseString(b[1:])
	if err != nil {
		return Describe{}, err
	}
	if len(rest) != 0 {
		return Describe{}, ErrBadpayloadf("trailing bytes")
	}
	return Describe{ClipRef: ref}, nil
}

// ParseDescribeResp decodes a DescribeResp.
func ParseDescribeResp(b []byte) (DescribeResp, error) {
	if len(b) < 1 || b[0] != MsgDescribeResp {
		return DescribeResp{}, ErrBadType
	}
	if len(b) != 2+24 {
		return DescribeResp{}, ErrBadpayloadf("length %d", len(b))
	}
	var m DescribeResp
	m.OK = b[1] == 1
	vals := []*uint32{&m.EncodedBps, &m.FrameMilli, &m.DurationMs, &m.TotalFrames, &m.UnitBytes, &m.TickMs}
	off := 2
	for _, v := range vals {
		*v = binary.BigEndian.Uint32(b[off:])
		off += 4
	}
	return m, nil
}

// ParsePlay decodes a Play.
func ParsePlay(b []byte) (Play, error) {
	if len(b) < 1 || b[0] != MsgPlay {
		return Play{}, ErrBadType
	}
	ref, rest, err := parseString(b[1:])
	if err != nil {
		return Play{}, err
	}
	if len(rest) != 2 {
		return Play{}, ErrBadpayloadf("missing data port")
	}
	return Play{ClipRef: ref, DataPort: binary.BigEndian.Uint16(rest)}, nil
}

// ParsePlayResp decodes a PlayResp.
func ParsePlayResp(b []byte) (PlayResp, error) {
	if len(b) != 2 || b[0] != MsgPlayResp {
		return PlayResp{}, ErrBadType
	}
	return PlayResp{OK: b[1] == 1}, nil
}

// ParseData decodes a data unit header and returns the segment payload.
func ParseData(b []byte) (DataHeader, []byte, error) {
	if len(b) < DataHeaderLen {
		return DataHeader{}, nil, ErrShort
	}
	if b[0] != MsgData {
		return DataHeader{}, nil, ErrBadType
	}
	return DataHeader{
		Seq:    binary.BigEndian.Uint32(b[1:]),
		SentMs: binary.BigEndian.Uint32(b[5:]),
	}, b[DataHeaderLen:], nil
}
