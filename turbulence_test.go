package turbulence_test

import (
	"testing"
	"time"

	"turbulence"
)

func TestPublicAPIQuickstart(t *testing.T) {
	run, err := turbulence.RunPair(2002, 2, turbulence.High)
	if err != nil {
		t.Fatal(err)
	}
	cmp := turbulence.Compare(run)
	if !cmp.WMP.CBR {
		t.Fatal("MediaPlayer flow should classify CBR")
	}
	if cmp.Real.CBR {
		t.Fatal("RealPlayer flow should classify VBR")
	}
	if cmp.WMP.FragShare == 0 {
		t.Fatal("high-rate MediaPlayer should fragment")
	}
	if cmp.Real.FragShare != 0 {
		t.Fatal("RealPlayer should never fragment")
	}
}

func TestPublicAPILibrary(t *testing.T) {
	if len(turbulence.Library()) != 6 || len(turbulence.AllClips()) != 26 {
		t.Fatal("library shape")
	}
	clip, ok := turbulence.FindClip(6, turbulence.Real, turbulence.VeryHigh)
	if !ok || clip.EncodedKbps != 636.9 {
		t.Fatalf("FindClip: %v %t", clip, ok)
	}
	if len(turbulence.Sites()) != 6 {
		t.Fatal("sites")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	ids := turbulence.ExperimentIDs()
	if len(ids) < 16 {
		t.Fatalf("experiment ids: %v", ids)
	}
	ctx := turbulence.NewExperimentContext(7)
	res, err := turbulence.RunExperiment(ctx, "fig05")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig05" || len(res.Series) == 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestPublicAPIGenerator(t *testing.T) {
	run, err := turbulence.RunPair(3, 3, turbulence.Low)
	if err != nil {
		t.Fatal(err)
	}
	model := turbulence.FitModel(run.RealFlow)
	gen := turbulence.GenerateFlow(model, turbulence.NewRNG(1), 30*time.Second, run.RealFlow.Flow)
	if gen.Len() == 0 {
		t.Fatal("generator produced nothing")
	}
	prof := turbulence.ProfileFlow(gen.SplitFlows()[0])
	if prof.Packets == 0 {
		t.Fatal("profile empty")
	}
}

func TestPublicAPIFilter(t *testing.T) {
	f, err := turbulence.CompileFilter("udp.port == 5002 && !ip.frag")
	if err != nil {
		t.Fatal(err)
	}
	run, err := turbulence.RunPair(4, 2, turbulence.Low)
	if err != nil {
		t.Fatal(err)
	}
	sub := f.Apply(run.Trace)
	if sub.Len() == 0 {
		t.Fatal("filter matched nothing")
	}
	for i := 0; i < sub.Len(); i++ {
		if sub.At(i).IsFragment() {
			t.Fatal("filter leaked a fragment")
		}
	}
}

func TestPublicAPITestbedScripting(t *testing.T) {
	tb := turbulence.NewTestbed(5)
	if tb.Client == nil || len(tb.Sites) != 6 {
		t.Fatal("testbed shape")
	}
	// The network runs standalone for custom scripting.
	if err := tb.Net.Run(0); err != nil {
		t.Fatal(err)
	}
}
