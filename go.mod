module turbulence

go 1.24
