module turbulence

go 1.23
